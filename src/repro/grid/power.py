"""Graph powers of toroidal grids.

The paper uses two flavours of graph power:

* ``G^(k)`` — the usual k-th power with respect to graph (L1) distance; the
  anchors of the normal form ``A' ∘ S_k`` are a maximal independent set in
  ``G^(k)``.
* ``G^[k]`` — the k-th power with respect to the L-infinity distance
  (Definition 5); the 4-colouring and edge-colouring algorithms of
  Sections 8 and 10 use this variant because its balls are hypercubes.

A :class:`PowerGraph` is a light-weight adjacency view over a grid: it does
not materialise the edge set unless asked to, because for moderate ``k`` the
number of power edges grows quickly.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from repro.grid.geometry import offsets_within, power_degree_bound
from repro.grid.torus import Node, ToroidalGrid


def power_neighbours(grid: ToroidalGrid, node: Node, k: int, norm: str = "l1") -> List[Node]:
    """Return the neighbours of ``node`` in the k-th power of ``grid``.

    Nodes at distance between 1 and ``k`` (in the requested norm) from
    ``node``; duplicates caused by wrap-around on small tori are removed.
    """
    seen = {node}
    result = []
    for offset in offsets_within(grid.dimension, k, norm):
        target = grid.shift(node, offset)
        if target not in seen:
            seen.add(target)
            result.append(target)
    return result


class PowerGraph:
    """Adjacency view of ``G^(k)`` (L1) or ``G^[k]`` (L-infinity).

    Parameters
    ----------
    grid:
        The underlying toroidal grid.
    k:
        The power; ``k = 1`` gives the grid itself (for the L1 norm).
    norm:
        ``"l1"`` for ``G^(k)`` or ``"linf"`` for ``G^[k]``.
    """

    def __init__(self, grid: ToroidalGrid, k: int, norm: str = "l1"):
        if k < 1:
            raise ValueError("power k must be at least 1")
        if norm not in ("l1", "linf"):
            raise ValueError(f"unknown norm {norm!r}")
        self.grid = grid
        self.k = k
        self.norm = norm

    @property
    def node_count(self) -> int:
        """Number of nodes (same as the underlying grid)."""
        return self.grid.node_count

    def nodes(self) -> Iterator[Node]:
        """Iterate over the nodes of the power graph."""
        return self.grid.nodes()

    def neighbours(self, node: Node) -> List[Node]:
        """Return the power-graph neighbours of ``node``."""
        return power_neighbours(self.grid, node, self.k, self.norm)

    def are_adjacent(self, u: Node, v: Node) -> bool:
        """Return True if ``u`` and ``v`` are within distance ``k`` (and distinct)."""
        if u == v:
            return False
        if self.norm == "l1":
            return self.grid.l1_distance(u, v) <= self.k
        return self.grid.linf_distance(u, v) <= self.k

    def max_degree(self) -> int:
        """Upper bound on the degree: the size of a radius-k ball minus one.

        On small tori where balls wrap around, the true degree can be lower;
        the bound is what the paper's running-time analyses use.
        """
        return power_degree_bound(self.grid.dimension, self.k, self.norm)

    def adjacency(self) -> Dict[Node, List[Node]]:
        """Materialise the adjacency lists of the power graph."""
        return {node: self.neighbours(node) for node in self.nodes()}

    def simulation_overhead(self) -> int:
        """Rounds of the base grid needed to simulate one power-graph round.

        One communication round on ``G^(k)`` (L1) costs ``k`` rounds on the
        grid; one round on ``G^[k]`` (L-infinity) costs ``k * d`` rounds,
        because ``‖·‖_1 ≤ d · ‖·‖_∞`` (cf. the proof of Theorem 4).
        """
        if self.norm == "l1":
            return self.k
        return self.k * self.grid.dimension

    def edges(self) -> Iterator[Tuple[Node, Node]]:
        """Iterate over each power edge once (endpoints in canonical order)."""
        for node in self.nodes():
            for neighbour in self.neighbours(node):
                if node < neighbour:
                    yield (node, neighbour)

    def __repr__(self) -> str:
        flavour = "G^({})".format(self.k) if self.norm == "l1" else "G^[{}]".format(self.k)
        return f"PowerGraph({flavour} of {self.grid!r})"
