"""Toroidal grid substrate.

This package implements the graph family the paper studies: ``d``-dimensional
toroidal grids with a globally consistent orientation (each node knows which
incident edge increases which coordinate).  It also provides the geometric
helpers (L1 / L-infinity norms, balls, graph powers) used by the
symmetry-breaking and speed-up machinery.
"""

from repro.grid.torus import Direction, ToroidalGrid, edge_key, edge_endpoints
from repro.grid.geometry import (
    ball_offsets,
    l1_norm,
    linf_norm,
    offsets_within,
)
from repro.grid.indexer import GridIndexer
from repro.grid.power import PowerGraph, power_neighbours
from repro.grid.subgrid import Window, extract_window, render_pattern
from repro.grid.identifiers import (
    IdentifierAssignment,
    adversarial_identifiers,
    random_identifiers,
    row_major_identifiers,
)

__all__ = [
    "Direction",
    "GridIndexer",
    "IdentifierAssignment",
    "PowerGraph",
    "ToroidalGrid",
    "Window",
    "adversarial_identifiers",
    "ball_offsets",
    "edge_endpoints",
    "edge_key",
    "extract_window",
    "l1_norm",
    "linf_norm",
    "offsets_within",
    "power_neighbours",
    "random_identifiers",
    "render_pattern",
    "row_major_identifiers",
]
