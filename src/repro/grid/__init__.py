"""Toroidal grid substrate.

This package implements the graph family the paper studies: ``d``-dimensional
toroidal grids with a globally consistent orientation (each node knows which
incident edge increases which coordinate).  It also provides the geometric
helpers (L1 / L-infinity norms, balls, graph powers) used by the
symmetry-breaking and speed-up machinery.
"""

from repro.grid.torus import Direction, ToroidalGrid, edge_key, edge_endpoints
from repro.grid.geometry import (
    ball_offsets,
    l1_norm,
    linf_norm,
    offsets_within,
)
from repro.grid.topology import (
    BaseTopology,
    DirectedCycleTopology,
    GraphTopology,
    Topology,
    TopologyCache,
    TreeTopology,
    apply_rule_dict,
    clear_topology_cache,
    random_bounded_degree_graph,
    random_regular_graph,
    topology_cache,
)
from repro.grid.indexer import GridIndexer
from repro.grid.power import PowerGraph, power_neighbours
from repro.grid.subgrid import Window, extract_window, render_pattern
from repro.grid.identifiers import (
    IdentifierAssignment,
    adversarial_identifiers,
    random_identifiers,
    row_major_identifiers,
)

__all__ = [
    "BaseTopology",
    "Direction",
    "DirectedCycleTopology",
    "GraphTopology",
    "GridIndexer",
    "IdentifierAssignment",
    "PowerGraph",
    "Topology",
    "TopologyCache",
    "ToroidalGrid",
    "TreeTopology",
    "Window",
    "adversarial_identifiers",
    "apply_rule_dict",
    "ball_offsets",
    "clear_topology_cache",
    "edge_endpoints",
    "edge_key",
    "extract_window",
    "l1_norm",
    "linf_norm",
    "offsets_within",
    "power_neighbours",
    "random_bounded_degree_graph",
    "random_identifiers",
    "random_regular_graph",
    "render_pattern",
    "row_major_identifiers",
    "topology_cache",
]
