"""Rectangular windows of two-dimensional grids.

Windows ("tiles" in the paper's Section 7 and Appendix A.1) are small
``width x height`` rectangles whose cells carry values — typically the
anchor indicator bits of a maximal independent set.  The synthesis engine
enumerates which window contents can occur, and the runtime lookup
algorithms extract the window around each node and consult a table.

A window's contents are stored as a tuple of columns, each column being a
tuple of cell values ordered by increasing ``y``; the whole structure is
hashable so windows can be used directly as dictionary keys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from repro.grid.torus import Node, ToroidalGrid

Pattern = Tuple[Tuple[int, ...], ...]


@dataclass(frozen=True)
class Window:
    """A ``width x height`` pattern of cell values.

    ``cells[x][y]`` is the value at horizontal offset ``x`` (eastwards) and
    vertical offset ``y`` (northwards) from the window's south-west corner.
    """

    cells: Pattern

    @property
    def width(self) -> int:
        """Number of columns."""
        return len(self.cells)

    @property
    def height(self) -> int:
        """Number of rows."""
        return len(self.cells[0]) if self.cells else 0

    def value(self, x: int, y: int) -> int:
        """Return the value stored at offset ``(x, y)``."""
        return self.cells[x][y]

    def column(self, x: int) -> Tuple[int, ...]:
        """Return column ``x`` (a tuple of ``height`` values)."""
        return self.cells[x]

    def subwindow(self, x0: int, y0: int, width: int, height: int) -> "Window":
        """Return the sub-window with south-west corner ``(x0, y0)``."""
        if x0 < 0 or y0 < 0 or x0 + width > self.width or y0 + height > self.height:
            raise ValueError("sub-window does not fit inside the window")
        return Window(
            tuple(
                tuple(self.cells[x][y0:y0 + height])
                for x in range(x0, x0 + width)
            )
        )

    def west_part(self) -> "Window":
        """Drop the easternmost column (used for horizontal tile edges)."""
        return Window(self.cells[:-1])

    def east_part(self) -> "Window":
        """Drop the westernmost column."""
        return Window(self.cells[1:])

    def south_part(self) -> "Window":
        """Drop the northernmost row (used for vertical tile edges)."""
        return Window(tuple(column[:-1] for column in self.cells))

    def north_part(self) -> "Window":
        """Drop the southernmost row."""
        return Window(tuple(column[1:] for column in self.cells))

    def count(self, value: int) -> int:
        """Return how many cells carry ``value``."""
        return sum(column.count(value) for column in self.cells)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return render_pattern(self.cells)

    @classmethod
    def from_rows(cls, rows: Tuple[Tuple[int, ...], ...]) -> "Window":
        """Build a window from rows listed north-to-south (as printed).

        This matches the visual layout used in the paper's Section 7 tile
        listing, where the topmost printed row has the largest ``y``.
        """
        height = len(rows)
        width = len(rows[0]) if rows else 0
        cells = tuple(
            tuple(rows[height - 1 - y][x] for y in range(height))
            for x in range(width)
        )
        return cls(cells)


def extract_window(
    grid: ToroidalGrid,
    values: Dict[Node, int],
    south_west: Node,
    width: int,
    height: int,
) -> Window:
    """Extract a window of node values from a two-dimensional toroidal grid.

    ``south_west`` is the node occupying the window's ``(0, 0)`` offset;
    the window extends eastwards and northwards with wrap-around.
    """
    if grid.dimension != 2:
        raise ValueError("windows are only defined for two-dimensional grids")
    columns = []
    for x in range(width):
        column = []
        for y in range(height):
            node = grid.shift(south_west, (x, y))
            column.append(values[node])
        columns.append(tuple(column))
    return Window(tuple(columns))


def window_around(
    grid: ToroidalGrid,
    values: Dict[Node, int],
    centre: Node,
    width: int,
    height: int,
) -> Window:
    """Extract the window whose designated centre cell sits on ``centre``.

    The centre cell is at offset ``(width // 2, height // 2)``; this is the
    fixed reference position used by lookup-table algorithms.
    """
    south_west = grid.shift(centre, (-(width // 2), -(height // 2)))
    return extract_window(grid, values, south_west, width, height)


def build_window(width: int, height: int, fill: Callable[[int, int], int]) -> Window:
    """Construct a window by evaluating ``fill(x, y)`` for every cell."""
    return Window(
        tuple(tuple(fill(x, y) for y in range(height)) for x in range(width))
    )


def render_pattern(cells: Pattern) -> str:
    """Render a pattern with north at the top, matching the paper's figures."""
    if not cells:
        return "(empty)"
    width = len(cells)
    height = len(cells[0])
    lines = []
    for y in reversed(range(height)):
        lines.append("".join(str(cells[x][y]) for x in range(width)))
    return "\n".join(lines)
