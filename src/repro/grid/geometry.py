"""Geometric helpers for toroidal grids: norms, offsets and balls.

The paper (Section 8) works with two notions of distance on the grid:

* the L1 (graph) distance ``‖v‖ = Σ_i ‖v_i‖``, which equals the hop distance
  along grid edges, and
* the L-infinity distance ``‖v‖_∞ = max_i ‖v_i‖``, which is used for the
  "hypercube" balls ``B_∞(u, r)`` and the power graph ``G^[k]``.

Offsets here are *relative* displacement vectors (integers, possibly
negative); converting them to absolute toroidal coordinates is the grid's
job (:mod:`repro.grid.torus`).
"""

from __future__ import annotations

import itertools
from functools import lru_cache
from typing import Iterator, Sequence, Tuple

Offset = Tuple[int, ...]


def l1_norm(offset: Sequence[int]) -> int:
    """Return the L1 norm of a displacement vector."""
    return sum(abs(component) for component in offset)


def linf_norm(offset: Sequence[int]) -> int:
    """Return the L-infinity norm of a displacement vector."""
    if not offset:
        return 0
    return max(abs(component) for component in offset)


@lru_cache(maxsize=None)
def ball_offsets(dimension: int, radius: int, norm: str = "l1") -> Tuple[Offset, ...]:
    """Return all displacement vectors within ``radius`` of the origin.

    Parameters
    ----------
    dimension:
        Number of coordinates of the grid.
    radius:
        Maximum norm of the returned offsets (inclusive).
    norm:
        Either ``"l1"`` (graph distance balls) or ``"linf"``
        (hypercube balls ``B_∞``).

    The origin itself is included.  Results are cached because the same
    ball shapes are queried very frequently by the MIS and Voronoi code.
    """
    if dimension <= 0:
        raise ValueError("dimension must be positive")
    if radius < 0:
        raise ValueError("radius must be non-negative")
    if norm not in ("l1", "linf"):
        raise ValueError(f"unknown norm {norm!r}; expected 'l1' or 'linf'")

    measure = l1_norm if norm == "l1" else linf_norm
    result = []
    for offset in itertools.product(range(-radius, radius + 1), repeat=dimension):
        if measure(offset) <= radius:
            result.append(offset)
    return tuple(result)


def offsets_within(dimension: int, radius: int, norm: str = "l1") -> Iterator[Offset]:
    """Iterate over non-zero displacement vectors within ``radius``.

    Equivalent to :func:`ball_offsets` with the origin removed; this is the
    neighbourhood of a node in the power graph ``G^(k)`` (L1) or ``G^[k]``
    (L-infinity).
    """
    origin = (0,) * dimension
    for offset in ball_offsets(dimension, radius, norm):
        if offset != origin:
            yield offset


def ball_size(dimension: int, radius: int, norm: str = "l1") -> int:
    """Return the number of nodes in a radius-``radius`` ball (origin included)."""
    return len(ball_offsets(dimension, radius, norm))


def power_degree_bound(dimension: int, radius: int, norm: str = "l1") -> int:
    """Return the maximum degree of the power graph ``G^(k)`` / ``G^[k]``.

    For the L-infinity norm this is the paper's bound ``(2k+1)^d - 1``.
    """
    return ball_size(dimension, radius, norm) - 1


def add_offsets(a: Sequence[int], b: Sequence[int]) -> Offset:
    """Component-wise sum of two displacement vectors."""
    return tuple(x + y for x, y in zip(a, b))


def negate_offset(offset: Sequence[int]) -> Offset:
    """Return the component-wise negation of a displacement vector."""
    return tuple(-component for component in offset)
