"""Unique identifier assignments for LOCAL-model simulations.

In the LOCAL model every node carries a unique identifier from
``{1, ..., poly(n)}``.  Deterministic algorithms may depend on the
identifiers in arbitrary ways, so the library provides several assignment
schemes: the "natural" row-major numbering, uniformly random permutations
(seeded, for reproducibility), and an adversarial-looking scheme that mixes
bit-reversal with an affine shuffle — useful when probing whether an
algorithm accidentally relies on identifier structure.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro.grid.torus import Node, ToroidalGrid


@dataclass(frozen=True)
class IdentifierAssignment:
    """An injective map from nodes to positive integer identifiers."""

    mapping: Dict[Node, int] = field(default_factory=dict)

    def identifier(self, node: Node) -> int:
        """Return the identifier of ``node``."""
        return self.mapping[node]

    def __getitem__(self, node: Node) -> int:
        return self.mapping[node]

    def __contains__(self, node: Node) -> bool:
        return node in self.mapping

    def __len__(self) -> int:
        return len(self.mapping)

    def items(self) -> Iterable[Tuple[Node, int]]:
        """Iterate over ``(node, identifier)`` pairs."""
        return self.mapping.items()

    def max_identifier(self) -> int:
        """Return the largest identifier in use."""
        return max(self.mapping.values())

    def validate(self) -> None:
        """Raise ``ValueError`` if the assignment is not injective/positive."""
        values = list(self.mapping.values())
        if len(set(values)) != len(values):
            raise ValueError("identifier assignment is not injective")
        if any(value <= 0 for value in values):
            raise ValueError("identifiers must be positive integers")

    def relabel(self, permutation: Dict[int, int]) -> "IdentifierAssignment":
        """Return a new assignment with identifiers mapped through ``permutation``."""
        return IdentifierAssignment(
            {node: permutation[value] for node, value in self.mapping.items()}
        )


def _ordered_nodes(grid: ToroidalGrid) -> List[Node]:
    return list(grid.nodes())


def row_major_identifiers(grid: ToroidalGrid, start: int = 1) -> IdentifierAssignment:
    """Assign identifiers ``start, start+1, ...`` in row-major node order."""
    return IdentifierAssignment(
        {node: start + index for index, node in enumerate(_ordered_nodes(grid))}
    )


def random_identifiers(
    grid: ToroidalGrid, seed: int = 0, id_space_factor: int = 4
) -> IdentifierAssignment:
    """Assign a random injective labelling from ``{1, ..., factor * N}``.

    Using an identifier space larger than the node count (``factor >= 1``)
    exercises algorithms that must not assume the identifiers are a
    contiguous range.
    """
    if id_space_factor < 1:
        raise ValueError("id_space_factor must be at least 1")
    nodes = _ordered_nodes(grid)
    rng = random.Random(seed)
    universe = rng.sample(range(1, id_space_factor * len(nodes) + 1), len(nodes))
    return IdentifierAssignment(dict(zip(nodes, universe)))


def adversarial_identifiers(grid: ToroidalGrid) -> IdentifierAssignment:
    """Assign identifiers via a bit-reversal/affine shuffle of the node index.

    The scheme is deterministic but deliberately destroys the spatial
    locality of the row-major order, so that neighbouring nodes receive very
    different identifiers.  It is useful as a structured "worst case" in
    tests of symmetry-breaking algorithms.
    """
    nodes = _ordered_nodes(grid)
    count = len(nodes)
    bits = max(1, (count - 1).bit_length())

    def shuffle(index: int) -> int:
        reversed_bits = int(format(index, f"0{bits}b")[::-1], 2)
        return (reversed_bits * 2654435761 + index) % (1 << 31)

    scored = sorted(range(count), key=shuffle)
    mapping = {}
    for rank, original_index in enumerate(scored):
        mapping[nodes[original_index]] = rank + 1
    return IdentifierAssignment(mapping)


def cycle_identifiers(length: int, seed: int = 0, id_space_factor: int = 4) -> List[int]:
    """Random unique identifiers for a directed cycle of ``length`` nodes.

    Returned as a list indexed by position along the cycle; used by the
    one-dimensional (Section 4) machinery and the q-sum coordination
    experiments.
    """
    if length <= 0:
        raise ValueError("length must be positive")
    rng = random.Random(seed)
    return rng.sample(range(1, id_space_factor * length + 1), length)
