"""Speed-up on graph classes of bounded growth (Appendix A.2).

Lemma 26 of the paper generalises the grid speed-up: in a
neighbourhood-hereditary, ``f``-growth-bounded graph class of bounded
degree, any deterministic ``o(f^{-1}(n))``-time algorithm for an LCL problem
can be replaced by an ``O(log* n)``-time one.  The constructive core of the
argument is the choice of the constant ``k`` with ``f(2T(k) + 3) < k / C``;
this module computes that threshold for concrete growth bounds (polynomial
growth of grids being the motivating case) and exposes the distance-
colouring palette sizes the lemma's simulation relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import SynthesisError


@dataclass(frozen=True)
class GrowthBound:
    """A growth bound ``f`` for a graph class: ``|N_r(v)| <= f(r)``."""

    name: str
    function: Callable[[int], int]

    def __call__(self, radius: int) -> int:
        return self.function(radius)

    def inverse_at(self, value: int, maximum: int = 10**6) -> int:
        """Smallest ``r`` with ``f(r) >= value`` (a discrete inverse)."""
        radius = 0
        while radius <= maximum:
            if self.function(radius) >= value:
                return radius
            radius += 1
        raise SynthesisError(f"growth bound {self.name!r} never reaches {value}")


def grid_growth_bound(dimension: int) -> GrowthBound:
    """The growth bound of ``d``-dimensional grids: an L1 ball of radius r.

    The exact ball size is used for d = 1, 2 (cycle and grid); for higher
    dimensions the standard upper bound ``(2r + 1)^d`` is used.
    """
    if dimension == 1:
        return GrowthBound("cycle", lambda r: 2 * r + 1)
    if dimension == 2:
        return GrowthBound("grid-2d", lambda r: 2 * r * r + 2 * r + 1)
    return GrowthBound(f"grid-{dimension}d", lambda r: (2 * r + 1) ** dimension)


def speedup_threshold(
    growth: GrowthBound,
    base_locality: Callable[[int], int],
    hereditary_constant: int = 1,
    maximum: int = 100000,
) -> int:
    """Choose the constant ``k`` of Lemma 26.

    Returns the smallest ``k`` such that
    ``growth(2 * base_locality(k) + 3) < k / hereditary_constant``; the
    lemma's simulation then works: a distance-``(2T(k)+3)`` colouring with at
    most ``k`` colours exists and can serve as locally unique identifiers
    for simulating the base algorithm on instances of (pretended) size ``k``.
    """
    if hereditary_constant < 1:
        raise SynthesisError("the hereditary constant must be at least 1")
    for k in range(1, maximum + 1):
        if growth(2 * base_locality(k) + 3) < k / hereditary_constant:
            return k
    raise SynthesisError(
        "no suitable k found: the base locality does not look like o(f^{-1}(n))"
    )


def simulation_palette_size(growth: GrowthBound, base_locality: Callable[[int], int], k: int) -> int:
    """Palette needed for the distance colouring used in the Lemma 26 simulation."""
    return growth(2 * base_locality(k) + 3) + 1


def classify_locality(
    growth: GrowthBound,
    base_locality: Callable[[int], int],
    hereditary_constant: int = 1,
    maximum: int = 100000,
) -> Optional[int]:
    """Return the speed-up threshold if one exists below ``maximum``, else None.

    A convenience wrapper used by the Appendix A.2 experiment: localities
    that grow at least as fast as ``f^{-1}`` (for example ``Θ(√n)`` on
    two-dimensional grids) admit no threshold, and the function reports that
    by returning ``None`` instead of raising.
    """
    try:
        return speedup_threshold(growth, base_locality, hereditary_constant, maximum)
    except SynthesisError:
        return None
