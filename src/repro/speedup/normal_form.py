"""The normal form ``A' ∘ S_k`` as a runnable algorithm (Theorem 2, Figure 1).

Every ``Θ(log* n)`` LCL problem on grids has an algorithm of the form
``A' ∘ S_k``: first a problem-independent component ``S_k`` computes a
maximal independent set ("anchors") in the ``k``-th power of the grid, and
then a problem-specific *finite* rule ``A'`` maps the placement of anchors
within a constant-radius window around each node to that node's output.

:class:`NormalFormAlgorithm` is the runtime realisation: it composes the
anchor computation of :mod:`repro.symmetry.mis` with an arbitrary black-box
:class:`AnchorRule` — in practice the lookup tables produced by the
synthesis engine (:mod:`repro.synthesis`), which is exactly how the paper
obtains concrete algorithms such as 4-colouring and ``{1,3,4}``-orientation.

The module also exposes :func:`choose_normal_form_k`, the parameter rule
used in the proof of Theorem 2 (the smallest even ``k >= 4`` such that the
base algorithm's running time on ``k × k`` instances fits inside a quarter
tile), so that the relationship between a base algorithm's locality and the
anchor spacing can be inspected and tested.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional

from repro.errors import SynthesisError
from repro.grid.identifiers import IdentifierAssignment
from repro.grid.indexer import GridIndexer
from repro.grid.subgrid import Window, window_around
from repro.grid.torus import Node, ToroidalGrid
from repro.local_model.algorithm import AlgorithmResult, GridAlgorithm
from repro.local_model.store import require_numpy, resolve_vector_engine
from repro.symmetry.mis import AnchorSet, compute_anchors


class AnchorRule(abc.ABC):
    """The problem-specific component ``A'`` of the normal form.

    A rule declares the dimensions of the anchor window it inspects and
    maps the window contents (anchor indicator bits, with the node itself
    at the window's centre cell) to the node's output label.
    """

    #: window width (number of columns, along the x axis).
    width: int = 1
    #: window height (number of rows, along the y axis).
    height: int = 1

    @abc.abstractmethod
    def output(self, window: Window) -> Any:
        """Return the output label for a node whose anchor window is ``window``."""

    @property
    def radius(self) -> int:
        """Locality radius of the rule (half the larger window dimension)."""
        return max(self.width, self.height) // 2


class FunctionAnchorRule(AnchorRule):
    """An :class:`AnchorRule` defined by a plain function."""

    def __init__(self, width: int, height: int, function: Callable[[Window], Any]):
        self.width = width
        self.height = height
        self._function = function

    def output(self, window: Window) -> Any:
        return self._function(window)


def choose_normal_form_k(base_locality: Callable[[int], int], maximum: int = 4096) -> int:
    """Choose the anchor spacing ``k`` as in the proof of Theorem 2.

    Returns the smallest even ``k >= 4`` such that
    ``base_locality(k) < k / 4 - 4``.  ``base_locality`` plays the role of
    the running time ``T`` of the original algorithm; the existence of such
    a ``k`` is exactly the assumption ``T(n) = o(n)``.
    """
    k = 4
    while k <= maximum:
        if base_locality(k) < k / 4 - 4:
            return k
        k += 2
    raise SynthesisError(
        f"no suitable k <= {maximum}; the base algorithm's locality does not look sublinear"
    )


@dataclass
class NormalFormAlgorithm(GridAlgorithm):
    """The composed algorithm ``A' ∘ S_k`` for two-dimensional grids.

    Attributes
    ----------
    rule:
        The problem-specific finite rule ``A'``.
    k:
        The power of the grid in which the anchors form a maximal
        independent set.
    norm:
        Which power graph to use (``"l1"`` for ``G^(k)``, as in the paper).
    """

    rule: AnchorRule
    k: int
    norm: str = "l1"
    name: str = "normal-form"
    engine: str = "auto"

    def run(
        self,
        grid: ToroidalGrid,
        identifiers: IdentifierAssignment,
        inputs: Optional[Mapping[Node, Any]] = None,
    ) -> AlgorithmResult:
        if grid.dimension != 2:
            raise SynthesisError("the normal-form runtime currently targets two-dimensional grids")
        anchors = compute_anchors(grid, identifiers, self.k, norm=self.norm)
        outputs = apply_anchor_rule(grid, anchors, self.rule, engine=self.engine)
        rounds = anchors.rounds + self.rule.radius
        return AlgorithmResult(
            node_labels=outputs,
            rounds=rounds,
            metadata={
                "k": self.k,
                "anchor_count": len(anchors.members),
                "anchor_rounds": anchors.rounds,
                "rule_radius": self.rule.radius,
                "phase_rounds": dict(anchors.phase_rounds),
            },
        )


def apply_anchor_rule(
    grid: ToroidalGrid,
    anchors: AnchorSet,
    rule: AnchorRule,
    engine: str = "auto",
) -> Dict[Node, Any]:
    """Apply the constant-time component ``A'`` given an anchor set.

    Every node extracts the ``width x height`` window of anchor indicator
    bits centred on itself and evaluates the rule; this is the ``O(k)``-time
    problem-specific part of the normal form.

    ``engine`` selects the execution path (``"auto"`` resolves to the
    fastest available tier; all are byte-identical, pinned by the
    randomized equivalence suite):

    * ``"dict"`` — per-node :func:`repro.grid.subgrid.window_around`
      extraction (the seed reference);
    * ``"indexed"`` — one precomputed offset table replaces the per-node
      ``grid.shift`` calls, producing identical windows;
    * ``"array"`` — the anchor bits are gathered into a numpy matrix and
      binary-encoded per node; ``rule.output`` runs once per *distinct*
      window (in first-occurrence order, so a failing window raises at the
      same node as the per-node paths) and the outputs are scattered back.
      Anchor windows repeat massively on a grid, so this removes almost
      every Python call from the sweep.
    """
    if grid.dimension != 2:
        raise ValueError("windows are only defined for two-dimensional grids")
    engine = resolve_vector_engine(engine)
    members = anchors.members
    width, height = rule.width, rule.height
    if engine == "dict":
        bits_by_node = {
            node: 1 if node in members else 0 for node in grid.nodes()
        }
        return {
            node: rule.output(
                window_around(grid, bits_by_node, node, width, height)
            )
            for node in grid.nodes()
        }
    indexer = GridIndexer.for_grid(grid)
    bits = [1 if node in members else 0 for node in indexer.nodes]
    # Offsets in column-major cell order, so that row[x * height + y] is the
    # window cell at (x, y); the centre cell sits at (width//2, height//2),
    # exactly as in window_around.
    offsets = tuple(
        (x - width // 2, y - height // 2)
        for x in range(width)
        for y in range(height)
    )
    # Binary window keys live in an int64; 64 or more cells would overflow
    # and silently collapse distinct windows, so such rules (far beyond any
    # window used in the paper) stay on the per-node indexed path.
    if engine == "array" and len(offsets) <= 63:
        return _apply_anchor_rule_array(indexer, bits, rule, offsets)
    table = indexer.offset_table(offsets)
    outputs: Dict[Node, Any] = {}
    for node, row in zip(indexer.nodes, table):
        cells = tuple(
            tuple(bits[row[x * height + y]] for y in range(height))
            for x in range(width)
        )
        outputs[node] = rule.output(Window(cells))
    return outputs


def _apply_anchor_rule_array(
    indexer: GridIndexer,
    bits,
    rule: AnchorRule,
    offsets,
) -> Dict[Node, Any]:
    """Array tier of :func:`apply_anchor_rule`: one ``rule.output`` call per
    distinct window, evaluated in first-occurrence (node) order."""
    np = require_numpy()
    width, height = rule.width, rule.height
    gather = indexer.offset_index_array(offsets)
    bit_matrix = np.asarray(bits, dtype=np.int64)[gather]
    weights = 2 ** np.arange(len(offsets), dtype=np.int64)
    keys = bit_matrix @ weights
    _, first_positions, inverse = np.unique(
        keys, return_index=True, return_inverse=True
    )
    outputs_by_key: List[Any] = [None] * len(first_positions)
    # Evaluate distinct windows in the order their first node appears, so an
    # uncovered window raises at exactly the node the per-node paths reach
    # first.
    for key_position in np.argsort(first_positions, kind="stable"):
        row = bit_matrix[first_positions[key_position]]
        cells = tuple(
            tuple(int(row[x * height + y]) for y in range(height))
            for x in range(width)
        )
        outputs_by_key[key_position] = rule.output(Window(cells))
    nodes = indexer.nodes
    return {
        nodes[position]: outputs_by_key[key_position]
        for position, key_position in enumerate(inverse)
    }
