"""The speed-up theorem and the normal form ``A' ∘ S_k`` (Section 5).

Theorem 2 shows that any ``o(n)``-time algorithm for an LCL problem on grids
can be replaced by an ``O(log* n)``-time one of a very specific shape: a
problem-independent anchor computation ``S_k`` (a maximal independent set in
``G^(k)``) followed by a problem-specific constant-radius rule ``A'`` that
only looks at the placement of anchors.  This package provides

* Voronoi decompositions of anchor sets and the induced *local coordinates*
  that serve as locally unique identifiers (:mod:`repro.speedup.voronoi`),
* the runtime normal-form algorithm composing ``S_k`` with an arbitrary
  black-box local rule ``A'`` (:mod:`repro.speedup.normal_form`), and
* the growth-bounded generalisation of the speed-up from Appendix A.2
  (:mod:`repro.speedup.bounded_growth`).
"""

from repro.speedup.voronoi import (
    VoronoiDecomposition,
    compute_voronoi_decomposition,
    local_identifier_assignment,
)
from repro.speedup.normal_form import (
    AnchorRule,
    NormalFormAlgorithm,
    choose_normal_form_k,
)
from repro.speedup.bounded_growth import (
    GrowthBound,
    grid_growth_bound,
    speedup_threshold,
)

__all__ = [
    "AnchorRule",
    "GrowthBound",
    "NormalFormAlgorithm",
    "VoronoiDecomposition",
    "choose_normal_form_k",
    "compute_voronoi_decomposition",
    "grid_growth_bound",
    "local_identifier_assignment",
    "speedup_threshold",
]
