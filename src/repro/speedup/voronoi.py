"""Voronoi decompositions of anchor sets and local coordinates.

The proof of Theorem 2 tiles the grid into Voronoi cells of the anchor set
(the MIS of ``G^(k)``): every node is associated with its closest anchor,
ties broken in an arbitrary but locally consistent way.  The displacement of
a node from its anchor serves as a *locally unique identifier*: two nodes
with the same displacement belong to different cells and are therefore far
apart.  This module computes the decomposition, the local coordinates, and
verifies the locally-unique-identifier property.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import SimulationError
from repro.grid.torus import Node, ToroidalGrid

Offset = Tuple[int, ...]


@dataclass
class VoronoiDecomposition:
    """A Voronoi tiling of the grid with respect to an anchor set."""

    anchors: Set[Node]
    owner: Dict[Node, Node] = field(default_factory=dict)
    local_coordinates: Dict[Node, Offset] = field(default_factory=dict)

    def tile(self, anchor: Node) -> List[Node]:
        """Return all nodes owned by ``anchor``."""
        return [node for node, owner in self.owner.items() if owner == anchor]

    def tile_sizes(self) -> Dict[Node, int]:
        """Return the number of nodes in each anchor's tile."""
        sizes: Dict[Node, int] = {anchor: 0 for anchor in self.anchors}
        for owner in self.owner.values():
            sizes[owner] += 1
        return sizes

    def max_tile_radius(self, grid: ToroidalGrid) -> int:
        """Largest L1 distance from a node to its owning anchor."""
        return max(
            grid.l1_distance(node, owner) for node, owner in self.owner.items()
        )


def _covering_radius(grid: ToroidalGrid, anchors: Set[Node]) -> int:
    """Largest distance from any node to its nearest anchor (multi-source BFS)."""
    distance: Dict[Node, int] = {anchor: 0 for anchor in anchors}
    frontier: List[Node] = list(anchors)
    radius = 0
    while frontier:
        next_frontier: List[Node] = []
        for node in frontier:
            for neighbour in grid.neighbour_nodes(node):
                if neighbour not in distance:
                    distance[neighbour] = distance[node] + 1
                    radius = max(radius, distance[neighbour])
                    next_frontier.append(neighbour)
        frontier = next_frontier
    return radius


def compute_voronoi_decomposition(
    grid: ToroidalGrid,
    anchors: Set[Node],
    search_radius: Optional[int] = None,
) -> VoronoiDecomposition:
    """Assign every node to its closest anchor (L1 distance).

    Ties are broken by the lexicographically smallest displacement vector,
    which is a rule every node can evaluate locally from the relative
    positions of the nearby anchors.  ``search_radius`` bounds how far a
    node looks for anchors; by default it is chosen generously from the
    grid size.  If some node finds no anchor within the search radius a
    :class:`repro.errors.SimulationError` is raised — for a maximal
    independent set of ``G^(k)`` a radius of ``k`` always suffices.
    """
    if not anchors:
        raise SimulationError("cannot build a Voronoi decomposition of an empty anchor set")
    if search_radius is None:
        search_radius = _covering_radius(grid, anchors)

    owner: Dict[Node, Node] = {}
    coordinates: Dict[Node, Offset] = {}
    for node in grid.nodes():
        best: Optional[Tuple[int, Node, Offset]] = None
        for candidate in grid.ball(node, search_radius, "l1"):
            if candidate not in anchors:
                continue
            displacement = grid.displacement(node, candidate)
            distance = sum(abs(component) for component in displacement)
            # Ties are broken by a fixed global order on the anchors (their
            # coordinate tuples stand in for their unique identifiers): a
            # globally consistent tie-break guarantees that following a
            # node's quadrant direction towards its anchor never leaves its
            # Voronoi tile, a property the L_M solver relies on.
            key = (distance, candidate, displacement)
            if best is None or key < best:
                best = key
        if best is None:
            raise SimulationError(
                f"node {node} has no anchor within distance {search_radius}"
            )
        _, anchor, displacement = best
        owner[node] = anchor
        coordinates[node] = displacement
    return VoronoiDecomposition(
        anchors=set(anchors), owner=owner, local_coordinates=coordinates
    )


def local_identifier_assignment(
    grid: ToroidalGrid,
    decomposition: VoronoiDecomposition,
    uniqueness_radius: int,
) -> Dict[Node, int]:
    """Turn local coordinates into small non-negative locally unique identifiers.

    The identifier of a node is its displacement from its anchor, encoded
    injectively as a non-negative integer.  The function verifies the
    Theorem 2 property that no identifier repeats within L1 distance
    ``uniqueness_radius`` and raises otherwise.
    """
    # The largest coordinate magnitude determines the encoding base.
    magnitude = 0
    for displacement in decomposition.local_coordinates.values():
        for component in displacement:
            magnitude = max(magnitude, abs(component))
    base = 2 * magnitude + 1

    identifiers: Dict[Node, int] = {}
    for node, displacement in decomposition.local_coordinates.items():
        value = 0
        for component in displacement:
            value = value * base + (component + magnitude)
        identifiers[node] = value

    for node in grid.nodes():
        for other in grid.ball(node, uniqueness_radius, "l1"):
            if other != node and identifiers[other] == identifiers[node]:
                raise SimulationError(
                    f"local identifiers repeat within distance {uniqueness_radius}: "
                    f"{node} and {other} both have identifier {identifiers[node]}"
                )
    return identifiers
