"""Voronoi decompositions of anchor sets and local coordinates.

The proof of Theorem 2 tiles the grid into Voronoi cells of the anchor set
(the MIS of ``G^(k)``): every node is associated with its closest anchor,
ties broken in an arbitrary but locally consistent way.  The displacement of
a node from its anchor serves as a *locally unique identifier*: two nodes
with the same displacement belong to different cells and are therefore far
apart.  This module computes the decomposition, the local coordinates, and
verifies the locally-unique-identifier property.

Two execution paths are provided.  The ``"dict"`` path is the reference:
per-node ``grid.ball`` scans with explicit displacement arithmetic.  The
``"indexed"`` path (the default) runs over
:class:`repro.grid.indexer.GridIndexer` tables: the default search radius
comes from a multi-source BFS over the precomputed neighbour table, and the
nearest-anchor search walks precomputed displacement shells in increasing
distance, stopping at the first shell containing an anchor.  Both paths
produce byte-identical decompositions — the tie-break key
``(distance, anchor, displacement)`` is evaluated on exactly the same
candidates — and the randomized equivalence harness pins this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import SimulationError
from repro.grid.indexer import GridIndexer
from repro.grid.torus import Node, ToroidalGrid
from repro.local_model.store import resolve_engine

Offset = Tuple[int, ...]


@dataclass
class VoronoiDecomposition:
    """A Voronoi tiling of the grid with respect to an anchor set."""

    anchors: Set[Node]
    owner: Dict[Node, Node] = field(default_factory=dict)
    local_coordinates: Dict[Node, Offset] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._tile_index: Optional[Dict[Node, List[Node]]] = None
        self._tile_index_size = -1

    def invalidate_tiles(self) -> None:
        """Drop the cached anchor → owned-nodes index.

        The decomposition is treated as immutable after construction; call
        this after mutating :attr:`owner` in place so that the next
        :meth:`tile` / :meth:`tile_sizes` call rebuilds the index.  (Size
        changes of the owner map are detected automatically; a same-size
        reassignment is not.)
        """
        self._tile_index = None

    def _tiles(self) -> Dict[Node, List[Node]]:
        """The anchor → owned-nodes index, built once and cached."""
        if self._tile_index is None or self._tile_index_size != len(self.owner):
            index: Dict[Node, List[Node]] = {anchor: [] for anchor in self.anchors}
            for node, owner in self.owner.items():
                index.setdefault(owner, []).append(node)
            self._tile_index = index
            self._tile_index_size = len(self.owner)
        return self._tile_index

    def tile(self, anchor: Node) -> List[Node]:
        """Return all nodes owned by ``anchor`` (empty for an unused anchor)."""
        return list(self._tiles().get(anchor, ()))

    def tile_sizes(self) -> Dict[Node, int]:
        """Return the number of nodes in each anchor's tile."""
        sizes: Dict[Node, int] = {anchor: 0 for anchor in self.anchors}
        for owner, nodes in self._tiles().items():
            sizes[owner] += len(nodes)
        return sizes

    def max_tile_radius(self, grid: ToroidalGrid) -> int:
        """Largest L1 distance from a node to its owning anchor."""
        return max(
            grid.l1_distance(node, owner) for node, owner in self.owner.items()
        )


def _covering_radius(grid: ToroidalGrid, anchors: Set[Node]) -> int:
    """Largest distance from any node to its nearest anchor (multi-source BFS)."""
    distance: Dict[Node, int] = {anchor: 0 for anchor in anchors}
    frontier: List[Node] = list(anchors)
    radius = 0
    while frontier:
        next_frontier: List[Node] = []
        for node in frontier:
            for neighbour in grid.neighbour_nodes(node):
                if neighbour not in distance:
                    distance[neighbour] = distance[node] + 1
                    radius = max(radius, distance[neighbour])
                    next_frontier.append(neighbour)
        frontier = next_frontier
    return radius


def compute_voronoi_decomposition(
    grid: ToroidalGrid,
    anchors: Set[Node],
    search_radius: Optional[int] = None,
    engine: str = "indexed",
) -> VoronoiDecomposition:
    """Assign every node to its closest anchor (L1 distance).

    Ties are broken by the lexicographically smallest displacement vector,
    which is a rule every node can evaluate locally from the relative
    positions of the nearby anchors.  ``search_radius`` bounds how far a
    node looks for anchors; by default it is chosen generously from the
    grid size.  If some node finds no anchor within the search radius a
    :class:`repro.errors.SimulationError` is raised — for a maximal
    independent set of ``G^(k)`` a radius of ``k`` always suffices.

    ``engine`` selects the execution path (``"indexed"`` default,
    ``"dict"`` reference); both produce byte-identical decompositions.
    """
    if not anchors:
        raise SimulationError("cannot build a Voronoi decomposition of an empty anchor set")
    engine = resolve_engine(engine, allowed=("dict", "indexed"))
    if engine == "indexed":
        return _compute_voronoi_indexed(grid, anchors, search_radius)
    return _compute_voronoi_dict(grid, anchors, search_radius)


def _compute_voronoi_dict(
    grid: ToroidalGrid,
    anchors: Set[Node],
    search_radius: Optional[int],
) -> VoronoiDecomposition:
    if search_radius is None:
        search_radius = _covering_radius(grid, anchors)

    owner: Dict[Node, Node] = {}
    coordinates: Dict[Node, Offset] = {}
    for node in grid.nodes():
        best: Optional[Tuple[int, Node, Offset]] = None
        for candidate in grid.ball(node, search_radius, "l1"):
            if candidate not in anchors:
                continue
            displacement = grid.displacement(node, candidate)
            distance = sum(abs(component) for component in displacement)
            # Ties are broken by a fixed global order on the anchors (their
            # coordinate tuples stand in for their unique identifiers): a
            # globally consistent tie-break guarantees that following a
            # node's quadrant direction towards its anchor never leaves its
            # Voronoi tile, a property the L_M solver relies on.
            key = (distance, candidate, displacement)
            if best is None or key < best:
                best = key
        if best is None:
            raise SimulationError(
                f"node {node} has no anchor within distance {search_radius}"
            )
        _, anchor, displacement = best
        owner[node] = anchor
        coordinates[node] = displacement
    return VoronoiDecomposition(
        anchors=set(anchors), owner=owner, local_coordinates=coordinates
    )


def _compute_voronoi_indexed(
    grid: ToroidalGrid,
    anchors: Set[Node],
    search_radius: Optional[int],
) -> VoronoiDecomposition:
    indexer = GridIndexer.for_grid(grid)
    if search_radius is None:
        search_radius = max(indexer.bfs_distances(anchors))

    nodes = indexer.nodes
    anchor_flags = [False] * indexer.node_count
    for anchor in anchors:
        anchor_flags[indexer.index_of(anchor)] = True

    _, table = indexer.ball_table(search_radius, "l1")
    shells = indexer.displacement_shells(search_radius, "l1")

    owner: Dict[Node, Node] = {}
    coordinates: Dict[Node, Offset] = {}
    for position, node in enumerate(nodes):
        row = table[position]
        best: Optional[Tuple[Node, Offset]] = None
        # Shells are sorted by toroidal distance, so the first shell with an
        # anchor decides; within a shell the reference key reduces to
        # (anchor, displacement).
        for _, entries in shells:
            for offset_index, displacement in entries:
                target = row[offset_index]
                if anchor_flags[target]:
                    key = (nodes[target], displacement)
                    if best is None or key < best:
                        best = key
            if best is not None:
                break
        if best is None:
            raise SimulationError(
                f"node {node} has no anchor within distance {search_radius}"
            )
        owner[node] = best[0]
        coordinates[node] = best[1]
    return VoronoiDecomposition(
        anchors=set(anchors), owner=owner, local_coordinates=coordinates
    )


def local_identifier_assignment(
    grid: ToroidalGrid,
    decomposition: VoronoiDecomposition,
    uniqueness_radius: int,
    engine: str = "indexed",
) -> Dict[Node, int]:
    """Turn local coordinates into small non-negative locally unique identifiers.

    The identifier of a node is its displacement from its anchor, encoded
    injectively as a non-negative integer.  The function verifies the
    Theorem 2 property that no identifier repeats within L1 distance
    ``uniqueness_radius`` and raises otherwise.  ``engine`` selects how the
    verification scan gathers the balls (``"indexed"`` tables or per-node
    ``"dict"`` calls); the outputs are identical.
    """
    # The largest coordinate magnitude determines the encoding base.
    magnitude = 0
    for displacement in decomposition.local_coordinates.values():
        for component in displacement:
            magnitude = max(magnitude, abs(component))
    base = 2 * magnitude + 1

    identifiers: Dict[Node, int] = {}
    for node, displacement in decomposition.local_coordinates.items():
        value = 0
        for component in displacement:
            value = value * base + (component + magnitude)
        identifiers[node] = value

    engine = resolve_engine(engine, allowed=("dict", "indexed"))
    if engine == "indexed":
        indexer = GridIndexer.for_grid(grid)
        nodes = indexer.nodes
        values = [identifiers[node] for node in nodes]
        ball_rows = indexer.ball_node_table(uniqueness_radius, "l1")
        for position, node in enumerate(nodes):
            value = values[position]
            for target in ball_rows[position]:
                if target != position and values[target] == value:
                    raise SimulationError(
                        f"local identifiers repeat within distance {uniqueness_radius}: "
                        f"{node} and {nodes[target]} both have identifier {value}"
                    )
    else:
        for node in grid.nodes():
            for other in grid.ball(node, uniqueness_radius, "l1"):
                if other != node and identifiers[other] == identifiers[node]:
                    raise SimulationError(
                        f"local identifiers repeat within distance {uniqueness_radius}: "
                        f"{node} and {other} both have identifier {identifiers[node]}"
                    )
    return identifiers
