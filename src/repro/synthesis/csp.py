"""A small binary constraint-satisfaction solver.

The synthesis of the finite rule ``A'`` reduces to a constraint satisfaction
problem: variables are tiles, domains are the problem's output labels, and
binary constraints come from the horizontal/vertical tile pairs.  The solver
implemented here is a classic backtracking search with

* minimum-remaining-values variable ordering (break ties by degree),
* forward checking (domain pruning of the neighbours of an assigned
  variable), and
* a node-budget so that provably hopeless instances (the synthesis loop for
  a *global* problem never succeeds) terminate with an "exhausted" verdict
  instead of running forever.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import SynthesisError

Variable = Hashable
Value = Hashable
Constraint = Callable[[Value, Value], bool]


@dataclass
class BinaryCSP:
    """A binary CSP: domains per variable and pairwise constraints.

    Constraints are stored per ordered pair of variables; ``constraint(a, b)``
    must return True when assigning ``a`` to the first variable and ``b`` to
    the second is allowed.  Multiple constraints on the same pair are all
    enforced.
    """

    domains: Dict[Variable, Tuple[Value, ...]] = field(default_factory=dict)
    constraints: Dict[Tuple[Variable, Variable], List[Constraint]] = field(default_factory=dict)

    def add_variable(self, variable: Variable, domain: Sequence[Value]) -> None:
        """Declare a variable with its domain."""
        if variable in self.domains:
            raise SynthesisError(f"variable {variable!r} declared twice")
        if not domain:
            raise SynthesisError(f"variable {variable!r} has an empty domain")
        self.domains[variable] = tuple(domain)

    def add_constraint(self, first: Variable, second: Variable, constraint: Constraint) -> None:
        """Add a constraint over the ordered pair ``(first, second)``."""
        if first not in self.domains or second not in self.domains:
            raise SynthesisError("constraints may only involve declared variables")
        self.constraints.setdefault((first, second), []).append(constraint)

    def neighbours(self) -> Dict[Variable, List[Tuple[Variable, bool]]]:
        """For each variable, the variables it shares a constraint with.

        Each entry is ``(other, am_first)`` where ``am_first`` records
        whether the variable appears as the first element of the constraint
        pair (needed to evaluate the constraint with arguments in the right
        order).
        """
        result: Dict[Variable, List[Tuple[Variable, bool]]] = {
            variable: [] for variable in self.domains
        }
        for (first, second) in self.constraints:
            result[first].append((second, True))
            result[second].append((first, False))
        return result

    def check_pair(self, first: Variable, second: Variable, a: Value, b: Value) -> bool:
        """Evaluate all constraints registered on the ordered pair."""
        for constraint in self.constraints.get((first, second), []):
            if not constraint(a, b):
                return False
        return True


@dataclass
class CSPResult:
    """Outcome of a CSP search."""

    satisfiable: bool
    assignment: Optional[Dict[Variable, Value]] = None
    nodes_explored: int = 0
    exhausted_budget: bool = False


def solve_binary_csp(csp: BinaryCSP, node_budget: int = 2_000_000) -> CSPResult:
    """Solve a binary CSP by backtracking with MRV and forward checking."""
    variables = list(csp.domains)
    if not variables:
        return CSPResult(satisfiable=True, assignment={})
    neighbours = csp.neighbours()
    domains: Dict[Variable, List[Value]] = {
        variable: list(domain) for variable, domain in csp.domains.items()
    }
    assignment: Dict[Variable, Value] = {}
    explored = 0
    budget_hit = False

    def consistent_with_assigned(variable: Variable, value: Value) -> bool:
        for other, am_first in neighbours[variable]:
            if other not in assignment:
                continue
            if am_first:
                if not csp.check_pair(variable, other, value, assignment[other]):
                    return False
            else:
                if not csp.check_pair(other, variable, assignment[other], value):
                    return False
        return True

    def prune(variable: Variable, value: Value) -> Optional[List[Tuple[Variable, Value]]]:
        """Forward checking; returns the removed (variable, value) pairs or None on wipe-out."""
        removed: List[Tuple[Variable, Value]] = []
        for other, am_first in neighbours[variable]:
            if other in assignment:
                continue
            for candidate in list(domains[other]):
                if am_first:
                    ok = csp.check_pair(variable, other, value, candidate)
                else:
                    ok = csp.check_pair(other, variable, candidate, value)
                if not ok:
                    domains[other].remove(candidate)
                    removed.append((other, candidate))
            if not domains[other]:
                for removed_variable, removed_value in removed:
                    domains[removed_variable].append(removed_value)
                return None
        return removed

    def select_variable() -> Variable:
        unassigned = [variable for variable in variables if variable not in assignment]
        return min(
            unassigned,
            key=lambda variable: (len(domains[variable]), -len(neighbours[variable])),
        )

    def backtrack() -> bool:
        nonlocal explored, budget_hit
        if len(assignment) == len(variables):
            return True
        if explored >= node_budget:
            budget_hit = True
            return False
        variable = select_variable()
        for value in list(domains[variable]):
            explored += 1
            if explored >= node_budget:
                budget_hit = True
                return False
            if not consistent_with_assigned(variable, value):
                continue
            removed = prune(variable, value)
            if removed is None:
                continue
            assignment[variable] = value
            if backtrack():
                return True
            del assignment[variable]
            for removed_variable, removed_value in removed:
                domains[removed_variable].append(removed_value)
        return False

    found = backtrack()
    if found:
        return CSPResult(satisfiable=True, assignment=dict(assignment), nodes_explored=explored)
    return CSPResult(
        satisfiable=False,
        assignment=None,
        nodes_explored=explored,
        exhausted_budget=budget_hit,
    )
