"""A from-scratch CDCL SAT solver.

Section 7 of the paper reports that the constraint-satisfaction instances
arising in synthesis (for example 4-colouring the tile neighbourhood graph
with 2079 tiles) are solved "with modern SAT solvers in a matter of
seconds".  No external solver is available offline, so this module provides
a compact conflict-driven clause-learning (CDCL) solver:

* two-watched-literal unit propagation,
* first-UIP conflict analysis with clause learning,
* VSIDS-style activity-based decision heuristic with decay,
* geometric restarts.

The implementation favours clarity over raw speed, but it comfortably
handles the instances produced by :mod:`repro.synthesis.encode`.

Literals follow the DIMACS convention: variables are positive integers and a
negative integer denotes the negated variable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import SynthesisError


@dataclass
class CNF:
    """A CNF formula over variables ``1 .. variable_count``."""

    variable_count: int = 0
    clauses: List[Tuple[int, ...]] = field(default_factory=list)

    def add_clause(self, literals: Iterable[int]) -> None:
        """Add a clause; literals are DIMACS-style non-zero integers."""
        clause = tuple(literals)
        if not clause:
            raise SynthesisError("empty clauses are not allowed (the formula would be UNSAT)")
        for literal in clause:
            if literal == 0:
                raise SynthesisError("0 is not a valid literal")
            self.variable_count = max(self.variable_count, abs(literal))
        self.clauses.append(clause)

    def new_variable(self) -> int:
        """Allocate and return a fresh variable index."""
        self.variable_count += 1
        return self.variable_count


@dataclass
class SATResult:
    """Outcome of a SAT search."""

    satisfiable: bool
    assignment: Optional[Dict[int, bool]] = None
    conflicts: int = 0
    decisions: int = 0
    restarts: int = 0
    exhausted_budget: bool = False


class _Solver:
    """Internal CDCL machinery (one instance per :func:`solve_cnf` call)."""

    def __init__(self, cnf: CNF, conflict_budget: int):
        self.variable_count = cnf.variable_count
        self.conflict_budget = conflict_budget
        # Clause database: list of lists of literals.  Learned clauses are
        # appended to the same list.
        self.clauses: List[List[int]] = [list(clause) for clause in cnf.clauses]
        # assignment[var] is None / True / False.
        self.assignment: List[Optional[bool]] = [None] * (self.variable_count + 1)
        self.level: List[int] = [0] * (self.variable_count + 1)
        self.reason: List[Optional[int]] = [None] * (self.variable_count + 1)
        self.trail: List[int] = []
        self.trail_limits: List[int] = []
        self.activity: List[float] = [0.0] * (self.variable_count + 1)
        self.activity_increment = 1.0
        self.watches: Dict[int, List[int]] = {}
        self.conflicts = 0
        self.decisions = 0
        self.restarts = 0

    # ------------------------------------------------------------------ #
    # Basic helpers
    # ------------------------------------------------------------------ #

    def _value(self, literal: int) -> Optional[bool]:
        value = self.assignment[abs(literal)]
        if value is None:
            return None
        return value if literal > 0 else not value

    def _watch(self, literal: int, clause_index: int) -> None:
        self.watches.setdefault(literal, []).append(clause_index)

    def _initialise_watches(self) -> Optional[int]:
        """Set up watched literals; returns a conflicting clause index if found."""
        for index, clause in enumerate(self.clauses):
            if len(clause) == 1:
                status = self._value(clause[0])
                if status is False:
                    return index
                if status is None:
                    self._enqueue(clause[0], index)
            else:
                self._watch(clause[0], index)
                self._watch(clause[1], index)
        return None

    def _enqueue(self, literal: int, reason: Optional[int]) -> None:
        variable = abs(literal)
        self.assignment[variable] = literal > 0
        self.level[variable] = len(self.trail_limits)
        self.reason[variable] = reason
        self.trail.append(literal)

    # ------------------------------------------------------------------ #
    # Unit propagation with two watched literals
    # ------------------------------------------------------------------ #

    def _propagate(self, queue_start: int) -> Tuple[Optional[int], int]:
        """Propagate from ``trail[queue_start:]``; return (conflict clause, new head)."""
        head = queue_start
        while head < len(self.trail):
            literal = self.trail[head]
            head += 1
            falsified = -literal
            watch_list = self.watches.get(falsified, [])
            new_watch_list: List[int] = []
            index_position = 0
            while index_position < len(watch_list):
                clause_index = watch_list[index_position]
                index_position += 1
                clause = self.clauses[clause_index]
                # Make sure the falsified literal sits at position 1.
                if clause[0] == falsified:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._value(first) is True:
                    new_watch_list.append(clause_index)
                    continue
                # Look for a replacement watch.
                replacement = None
                for position in range(2, len(clause)):
                    if self._value(clause[position]) is not False:
                        replacement = position
                        break
                if replacement is not None:
                    clause[1], clause[replacement] = clause[replacement], clause[1]
                    self._watch(clause[1], clause_index)
                    continue
                # No replacement: clause is unit or conflicting.
                new_watch_list.append(clause_index)
                if self._value(first) is False:
                    # Conflict: keep the remaining watches and report.
                    new_watch_list.extend(watch_list[index_position:])
                    self.watches[falsified] = new_watch_list
                    return clause_index, head
                self._enqueue(first, clause_index)
            self.watches[falsified] = new_watch_list
        return None, head

    # ------------------------------------------------------------------ #
    # Conflict analysis (first UIP)
    # ------------------------------------------------------------------ #

    def _bump(self, variable: int) -> None:
        self.activity[variable] += self.activity_increment
        if self.activity[variable] > 1e100:
            for index in range(1, self.variable_count + 1):
                self.activity[index] *= 1e-100
            self.activity_increment *= 1e-100

    def _analyse(self, conflict_index: int) -> Tuple[List[int], int]:
        """Return the learned clause and the backjump level (first UIP scheme)."""
        current_level = len(self.trail_limits)
        learned: List[int] = []
        seen = [False] * (self.variable_count + 1)
        counter = 0
        literal: Optional[int] = None
        clause = list(self.clauses[conflict_index])
        trail_index = len(self.trail) - 1

        while True:
            for clause_literal in clause:
                variable = abs(clause_literal)
                if literal is not None and clause_literal == -literal:
                    continue
                if not seen[variable] and self.level[variable] > 0:
                    seen[variable] = True
                    self._bump(variable)
                    if self.level[variable] >= current_level:
                        counter += 1
                    else:
                        learned.append(clause_literal)
            # Find the next literal on the trail to resolve on.
            while True:
                literal = self.trail[trail_index]
                trail_index -= 1
                if seen[abs(literal)]:
                    break
            counter -= 1
            if counter == 0:
                break
            reason_index = self.reason[abs(literal)]
            clause = list(self.clauses[reason_index]) if reason_index is not None else []
        learned.append(-literal)

        if len(learned) == 1:
            return learned, 0
        # Backjump to the second-highest decision level in the clause.
        levels = sorted((self.level[abs(lit)] for lit in learned[:-1]), reverse=True)
        return learned, levels[0]

    def _backtrack(self, target_level: int) -> None:
        while len(self.trail_limits) > target_level:
            limit = self.trail_limits.pop()
            while len(self.trail) > limit:
                literal = self.trail.pop()
                variable = abs(literal)
                self.assignment[variable] = None
                self.reason[variable] = None

    # ------------------------------------------------------------------ #
    # Decisions
    # ------------------------------------------------------------------ #

    def _pick_variable(self) -> Optional[int]:
        best = None
        best_activity = -1.0
        for variable in range(1, self.variable_count + 1):
            if self.assignment[variable] is None and self.activity[variable] > best_activity:
                best = variable
                best_activity = self.activity[variable]
        return best

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #

    def solve(self) -> SATResult:
        conflict = self._initialise_watches()
        if conflict is not None:
            return SATResult(satisfiable=False, conflicts=0, decisions=0)
        conflict_index, head = self._propagate(0)
        if conflict_index is not None:
            return SATResult(satisfiable=False, conflicts=1, decisions=0)

        restart_threshold = 128

        while True:
            if self.conflicts >= self.conflict_budget:
                return SATResult(
                    satisfiable=False,
                    conflicts=self.conflicts,
                    decisions=self.decisions,
                    restarts=self.restarts,
                    exhausted_budget=True,
                )
            variable = self._pick_variable()
            if variable is None:
                assignment = {
                    index: bool(self.assignment[index])
                    for index in range(1, self.variable_count + 1)
                }
                return SATResult(
                    satisfiable=True,
                    assignment=assignment,
                    conflicts=self.conflicts,
                    decisions=self.decisions,
                    restarts=self.restarts,
                )
            # Decide (default polarity: False, which suits at-most-one encodings).
            self.decisions += 1
            self.trail_limits.append(len(self.trail))
            self._enqueue(-variable, None)
            propagate_from = len(self.trail) - 1

            restart_now = False
            while True:
                conflict_index, propagate_from = self._propagate(propagate_from)
                if conflict_index is None:
                    break
                self.conflicts += 1
                self.activity_increment *= 1.05
                if self.conflicts % restart_threshold == 0:
                    restart_now = True
                if not self.trail_limits:
                    return SATResult(
                        satisfiable=False,
                        conflicts=self.conflicts,
                        decisions=self.decisions,
                        restarts=self.restarts,
                    )
                learned, backjump_level = self._analyse(conflict_index)
                self._backtrack(backjump_level)
                # Reorder the learned clause so that the asserting (first-UIP)
                # literal is watched first and a literal from the backjump
                # level is watched second — the standard watch invariant.
                learned.reverse()
                if len(learned) > 1:
                    best = max(
                        range(1, len(learned)),
                        key=lambda position: self.level[abs(learned[position])],
                    )
                    learned[1], learned[best] = learned[best], learned[1]
                self.clauses.append(learned)
                clause_index = len(self.clauses) - 1
                if len(learned) > 1:
                    self._watch(learned[0], clause_index)
                    self._watch(learned[1], clause_index)
                asserting = learned[0]
                if self._value(asserting) is None:
                    self._enqueue(asserting, clause_index if len(learned) > 1 else None)
                propagate_from = len(self.trail) - 1

            if restart_now and self.trail_limits:
                self.restarts += 1
                restart_threshold = int(restart_threshold * 1.5)
                self._backtrack(0)


def solve_cnf(cnf: CNF, conflict_budget: int = 200_000) -> SATResult:
    """Solve a CNF formula; returns a :class:`SATResult`.

    ``conflict_budget`` bounds the number of conflicts before the solver
    gives up with ``exhausted_budget=True`` (used by the synthesis loop,
    which must terminate even on unsatisfiable-looking instances).
    """
    if cnf.variable_count == 0:
        return SATResult(satisfiable=True, assignment={})
    solver = _Solver(cnf, conflict_budget)
    return solver.solve()


def verify_assignment(cnf: CNF, assignment: Dict[int, bool]) -> bool:
    """Check that ``assignment`` satisfies every clause of ``cnf``."""
    for clause in cnf.clauses:
        satisfied = False
        for literal in clause:
            value = assignment.get(abs(literal))
            if value is None:
                continue
            if (literal > 0) == value:
                satisfied = True
                break
        if not satisfied:
            return False
    return True
