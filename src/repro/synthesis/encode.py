"""Encoding the tile-labelling problem as CNF.

The synthesis CSP — assign every tile an output label such that all
horizontal and vertical tile pairs satisfy the problem's pair relations —
is encoded with the standard direct encoding:

* one Boolean variable ``x[tile, label]`` per tile/label pair,
* "at least one label" and "at most one label" clauses per tile,
* for every tile pair and every *forbidden* label combination, a clause
  ruling that combination out.

The encoding is what the paper alludes to when it reports solving the
4-colouring instance (2079 tiles) with a SAT solver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.lcl import GridLCL
from repro.errors import SynthesisError
from repro.grid.subgrid import Window
from repro.synthesis.sat import CNF
from repro.synthesis.tile_graph import TileGraph


@dataclass
class TileLabellingEncoding:
    """A CNF encoding together with the variable map needed to decode models."""

    cnf: CNF
    variable_of: Dict[Tuple[Window, object], int] = field(default_factory=dict)
    labels: Tuple[object, ...] = ()

    def decode(self, assignment: Dict[int, bool]) -> Dict[Window, object]:
        """Extract the tile labelling from a satisfying assignment."""
        table: Dict[Window, object] = {}
        for (tile, label), variable in self.variable_of.items():
            if assignment.get(variable, False):
                if tile in table:
                    raise SynthesisError(
                        "SAT model assigns two labels to one tile; encoding is inconsistent"
                    )
                table[tile] = label
        return table


def encode_tile_labelling_as_sat(problem: GridLCL, graph: TileGraph) -> TileLabellingEncoding:
    """Encode the synthesis instance for ``problem`` over ``graph`` as CNF."""
    if not problem.is_pairwise:
        raise SynthesisError(
            f"problem {problem.name!r} has a cross constraint; "
            "the tile-labelling encoding supports pairwise problems only"
        )
    labels: Tuple[object, ...] = tuple(
        label for label in problem.alphabet if problem.node_ok(label)
    )
    if not labels:
        raise SynthesisError(f"problem {problem.name!r} has no label satisfying the node predicate")

    cnf = CNF()
    variable_of: Dict[Tuple[Window, object], int] = {}
    for tile in graph.tiles:
        for label in labels:
            variable_of[(tile, label)] = cnf.new_variable()

    # Exactly-one-label constraints.
    for tile in graph.tiles:
        cnf.add_clause(variable_of[(tile, label)] for label in labels)
        for index, first in enumerate(labels):
            for second in labels[index + 1:]:
                cnf.add_clause(
                    (-variable_of[(tile, first)], -variable_of[(tile, second)])
                )

    # Forbidden combinations on horizontal and vertical pairs.
    def forbid(pairs, permitted) -> None:
        for west_or_south, east_or_north in pairs:
            for first in labels:
                for second in labels:
                    if not permitted(first, second):
                        cnf.add_clause(
                            (
                                -variable_of[(west_or_south, first)],
                                -variable_of[(east_or_north, second)],
                            )
                        )

    forbid(graph.horizontal_pairs, problem.horizontal_ok)
    forbid(graph.vertical_pairs, problem.vertical_ok)

    return TileLabellingEncoding(cnf=cnf, variable_of=variable_of, labels=labels)
