"""Pre-synthesised rule tables shipped with the library.

Synthesising the 4-colouring rule (``k = 3``, 7×5 windows, 2079 tiles) takes
a few seconds with the built-in CDCL solver; to keep the examples and the
default test suite fast, the table produced by
``benchmarks/test_bench_synthesis_tiles.py`` is shipped as package data and
can be loaded here.  The loader validates the table against the problem's
constraints before returning it, so a corrupted data file cannot silently
produce wrong algorithms.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional

from repro.core.catalog import vertex_colouring_problem
from repro.errors import SynthesisError
from repro.speedup.normal_form import NormalFormAlgorithm
from repro.synthesis.lookup import LookupAnchorRule, table_from_serialisable
from repro.synthesis.synthesiser import SynthesisOutcome, synthesise
from repro.synthesis.tile_graph import build_tile_graph
from repro.synthesis.synthesiser import validate_table

_DATA_DIRECTORY = Path(__file__).parent / "data"
_FOUR_COLOURING_FILE = _DATA_DIRECTORY / "fourcol_table_k3_7x5.json"


def four_colouring_table_path() -> Path:
    """Path of the shipped 4-colouring rule table."""
    return _FOUR_COLOURING_FILE


def load_four_colouring_outcome(validate: bool = False) -> SynthesisOutcome:
    """Load the shipped 4-colouring synthesis outcome (k=3, 7×5 windows).

    With ``validate=True`` the table is re-checked against a freshly built
    tile graph (a few seconds of tile enumeration); otherwise it is trusted.
    If the data file is missing, the table is re-synthesised from scratch.
    """
    problem = vertex_colouring_problem(4)
    if not _FOUR_COLOURING_FILE.exists():
        outcome = synthesise(problem, k=3, width=7, height=5, engine="sat")
        if not outcome.success:
            raise SynthesisError("re-synthesising the 4-colouring rule unexpectedly failed")
        return outcome
    with open(_FOUR_COLOURING_FILE, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    table = table_from_serialisable(data["table"])
    outcome = SynthesisOutcome(
        problem_name=problem.name,
        k=data["k"],
        width=data["width"],
        height=data["height"],
        success=True,
        table=table,
        tile_count=len(table),
        engine="sat (cached)",
    )
    if validate:
        graph = build_tile_graph(outcome.width, outcome.height, outcome.k)
        if not validate_table(problem, graph, table):
            raise SynthesisError("the shipped 4-colouring table fails validation")
    return outcome


def load_four_colouring_algorithm(validate: bool = False) -> NormalFormAlgorithm:
    """The normal-form 4-colouring algorithm ``A' ∘ S_3`` as a runnable object."""
    outcome = load_four_colouring_outcome(validate=validate)
    rule = LookupAnchorRule(outcome.width, outcome.height, outcome.table or {})
    return NormalFormAlgorithm(rule=rule, k=outcome.k, name="four-colouring-normal-form")
