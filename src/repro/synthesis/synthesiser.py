"""The synthesis loop (Section 7).

Given a pairwise LCL problem and an anchor spacing ``k``, synthesis searches
for a labelling of the tile neighbourhood graph that satisfies the problem's
constraints on every horizontal and vertical tile pair; a successful
labelling *is* the finite rule ``A'`` of the normal form, and soundness is
immediate: every window occurring around a node at run time is a tile, and
every adjacent pair of windows is one of the constrained pairs.

Because the classification question is undecidable (Theorem 3), the loop
over ``k`` and window sizes cannot promise termination for global problems;
all entry points therefore take explicit budgets and report honestly whether
an unsatisfiable verdict is exhaustive or merely budget-limited.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.lcl import GridLCL
from repro.errors import SynthesisError
from repro.grid.subgrid import Window
from repro.synthesis import disk_cache
from repro.synthesis.csp import BinaryCSP, solve_binary_csp
from repro.synthesis.encode import encode_tile_labelling_as_sat
from repro.synthesis.sat import solve_cnf
from repro.synthesis.tile_graph import (
    TileGraph,
    build_tile_graph,
    clear_tile_graph_cache,
)
from repro.synthesis.tiles import enumerate_tiles


@dataclass
class SynthesisOutcome:
    """Result of one synthesis attempt (one problem, one k, one window size)."""

    problem_name: str
    k: int
    width: int
    height: int
    success: bool
    table: Optional[Dict[Window, object]] = None
    tile_count: int = 0
    horizontal_pairs: int = 0
    vertical_pairs: int = 0
    engine: str = "csp"
    exhausted_budget: bool = False
    stats: Dict[str, int] = field(default_factory=dict)

    @property
    def certificate(self) -> str:
        """One-line description used in experiment reports."""
        if self.success:
            return (
                f"{self.problem_name}: synthesis succeeded at k={self.k} with "
                f"{self.width}x{self.height} windows ({self.tile_count} tiles)"
            )
        verdict = "unsatisfiable" if not self.exhausted_budget else "budget exhausted"
        return (
            f"{self.problem_name}: synthesis failed at k={self.k} with "
            f"{self.width}x{self.height} windows ({verdict})"
        )


def validate_table(problem: GridLCL, graph: TileGraph, table: Dict[Window, object]) -> bool:
    """Check a candidate rule table against every tile-pair constraint."""
    for tile in graph.tiles:
        if tile not in table:
            return False
        if not problem.node_ok(table[tile]):
            return False
    for west, east in graph.horizontal_pairs:
        if not problem.horizontal_ok(table[west], table[east]):
            return False
    for south, north in graph.vertical_pairs:
        if not problem.vertical_ok(table[south], table[north]):
            return False
    return True


def _solve_with_csp(
    problem: GridLCL, graph: TileGraph, node_budget: int
) -> Tuple[Optional[Dict[Window, object]], bool, Dict[str, int]]:
    labels = tuple(label for label in problem.alphabet if problem.node_ok(label))
    if not labels:
        raise SynthesisError(f"problem {problem.name!r} admits no label at all")
    csp = BinaryCSP()
    for tile in graph.tiles:
        csp.add_variable(tile, labels)
    for west, east in graph.horizontal_pairs:
        if west == east:
            continue
        csp.add_constraint(west, east, problem.horizontal_ok)
    for south, north in graph.vertical_pairs:
        if south == north:
            continue
        csp.add_constraint(south, north, problem.vertical_ok)
    # Self-pairs become unary restrictions on the tile's domain.
    restricted: Dict[Window, Tuple[object, ...]] = {}
    for west, east in graph.horizontal_pairs:
        if west == east:
            restricted[west] = tuple(
                label
                for label in restricted.get(west, labels)
                if problem.horizontal_ok(label, label)
            )
    for south, north in graph.vertical_pairs:
        if south == north:
            restricted[south] = tuple(
                label
                for label in restricted.get(south, labels)
                if problem.vertical_ok(label, label)
            )
    for tile, domain in restricted.items():
        if not domain:
            return None, False, {"nodes_explored": 0}
        csp.domains[tile] = domain

    result = solve_binary_csp(csp, node_budget=node_budget)
    stats = {"nodes_explored": result.nodes_explored}
    if result.satisfiable:
        return dict(result.assignment or {}), False, stats
    return None, result.exhausted_budget, stats


def _solve_with_sat(
    problem: GridLCL, graph: TileGraph, conflict_budget: int
) -> Tuple[Optional[Dict[Window, object]], bool, Dict[str, int]]:
    encoding = encode_tile_labelling_as_sat(problem, graph)
    result = solve_cnf(encoding.cnf, conflict_budget=conflict_budget)
    stats = {
        "conflicts": result.conflicts,
        "decisions": result.decisions,
        "clauses": len(encoding.cnf.clauses),
        "variables": encoding.cnf.variable_count,
    }
    if result.satisfiable and result.assignment is not None:
        return encoding.decode(result.assignment), False, stats
    return None, result.exhausted_budget, stats


# Successful synthesis outcomes keyed by (problem, k, width, height,
# engine, budgets).  GridLCL is a frozen dataclass, so one problem object
# used across a sweep hashes consistently; solving is deterministic, so a
# cache hit is byte-identical to a fresh run minus the search.  Only
# successes are cached, and the budgets are part of the key (a different
# budget can legitimately change the outcome).
_OUTCOME_CACHE: Dict[
    Tuple[GridLCL, int, int, int, str, int, int], SynthesisOutcome
] = {}


def clear_synthesis_cache() -> None:
    """Drop every layer of the synthesis caches (mainly for tests).

    The synthesis pipeline caches at three layers — successful outcomes
    here, built tile graphs in :mod:`repro.synthesis.tile_graph` and tile
    enumerations in :mod:`repro.synthesis.tiles` — and a "clear" that only
    drops the outcome layer leaks the lower ones across tests and sweeps:
    a subsequent run would still reuse stale tile artefacts while claiming
    to start cold.  All three layers are cleared together.
    """
    _OUTCOME_CACHE.clear()
    clear_tile_graph_cache()
    enumerate_tiles.cache_clear()


def _cached_outcome(key) -> Optional[SynthesisOutcome]:
    outcome = _OUTCOME_CACHE.get(key)
    if outcome is None:
        return None
    # Hand out fresh containers so callers mutating the table or stats
    # cannot poison later hits.
    return dataclasses.replace(
        outcome,
        table=dict(outcome.table) if outcome.table is not None else None,
        stats=dict(outcome.stats),
    )


def synthesise(
    problem: GridLCL,
    k: int,
    width: int,
    height: int,
    engine: str = "auto",
    csp_node_budget: int = 500_000,
    sat_conflict_budget: int = 300_000,
    graph: Optional[TileGraph] = None,
    use_cache: bool = True,
) -> SynthesisOutcome:
    """Attempt to synthesise the finite rule ``A'`` for one parameter choice.

    ``engine`` is ``"csp"``, ``"sat"`` or ``"auto"`` (CSP first, falling back
    to SAT when the CSP search exhausts its node budget without an answer).
    A pre-built tile graph can be passed to amortise enumeration across
    problems sharing the same parameters.

    With ``use_cache`` (the default), successful outcomes are reused across
    sweeps, keyed by ``(problem, k, window, engine)`` — the tile graph
    itself is likewise cached by :func:`build_tile_graph`, so repeated
    parameter scans re-derive neither the tiles nor the rule tables.
    Successful outcomes additionally persist across *processes* through
    the on-disk JSON cache of :mod:`repro.synthesis.disk_cache` (same key,
    fingerprint-checked on load, ``REPRO_CACHE_DIR`` override); corrupt or
    missing documents simply fall through to a fresh solve.  Passing an
    explicit ``graph`` bypasses the outcome cache (the caller may have
    customised it).
    """
    if not problem.is_pairwise:
        raise SynthesisError(
            f"problem {problem.name!r} has a cross constraint and cannot be synthesised "
            "with the pairwise tile CSP"
        )
    cache_key = None
    if use_cache and graph is None:
        cache_key = (
            problem, k, width, height, engine,
            csp_node_budget, sat_conflict_budget,
        )
        cached = _cached_outcome(cache_key)
        if cached is not None:
            return cached
        persisted = disk_cache.load_outcome(problem, cache_key)
        if persisted is not None:
            _OUTCOME_CACHE[cache_key] = persisted
            return _cached_outcome(cache_key)
    if graph is None:
        graph = build_tile_graph(width, height, k)

    table: Optional[Dict[Window, object]] = None
    exhausted = False
    stats: Dict[str, int] = {}
    used_engine = engine

    if engine in ("csp", "auto"):
        table, exhausted, stats = _solve_with_csp(problem, graph, csp_node_budget)
        used_engine = "csp"
    if table is None and engine == "sat":
        table, exhausted, stats = _solve_with_sat(problem, graph, sat_conflict_budget)
        used_engine = "sat"
    if table is None and engine == "auto" and exhausted:
        table, exhausted, stats = _solve_with_sat(problem, graph, sat_conflict_budget)
        used_engine = "sat"

    if table is not None and not validate_table(problem, graph, table):
        raise SynthesisError(
            f"internal error: solver returned an invalid rule table for {problem.name!r}"
        )

    outcome = SynthesisOutcome(
        problem_name=problem.name,
        k=k,
        width=width,
        height=height,
        success=table is not None,
        table=table,
        tile_count=graph.tile_count,
        horizontal_pairs=len(graph.horizontal_pairs),
        vertical_pairs=len(graph.vertical_pairs),
        engine=used_engine,
        exhausted_budget=exhausted,
        stats=stats,
    )
    if cache_key is not None and outcome.success:
        _OUTCOME_CACHE[cache_key] = dataclasses.replace(
            outcome,
            table=dict(outcome.table) if outcome.table is not None else None,
            stats=dict(outcome.stats),
        )
        disk_cache.store_outcome(problem, cache_key, outcome)
    return outcome


def candidate_window_sizes(k: int) -> List[Tuple[int, int]]:
    """Window sizes tried for a given anchor spacing, smallest first.

    The list includes the sizes highlighted in the paper: 3×2 windows for
    ``k = 1`` and 7×5 windows for ``k = 3``.
    """
    sizes = [
        (k + 1, k + 1),
        (2 * k + 1, max(2, 2 * k - 1)),
        (2 * k + 1, 2 * k + 1),
    ]
    unique: List[Tuple[int, int]] = []
    for size in sizes:
        if size not in unique:
            unique.append(size)
    return unique


@dataclass
class SynthesisSearch:
    """Record of a full synthesis search over several parameter choices."""

    problem_name: str
    attempts: List[SynthesisOutcome] = field(default_factory=list)
    best: Optional[SynthesisOutcome] = None

    @property
    def succeeded(self) -> bool:
        return self.best is not None and self.best.success


def synthesise_with_budget(
    problem: GridLCL,
    max_k: int = 3,
    window_sizes: Optional[Dict[int, Sequence[Tuple[int, int]]]] = None,
    engine: str = "auto",
    csp_node_budget: int = 500_000,
    sat_conflict_budget: int = 300_000,
) -> SynthesisSearch:
    """Run the synthesis loop over increasing ``k`` and window sizes.

    Mirrors Section 7's procedure ("start with k = 1 and increment it until
    synthesis succeeds"), with explicit budgets because the loop provably
    cannot terminate for global problems.  The search stops at the first
    success.
    """
    search = SynthesisSearch(problem_name=problem.name)
    for k in range(1, max_k + 1):
        sizes = (
            window_sizes.get(k, candidate_window_sizes(k))
            if window_sizes is not None
            else candidate_window_sizes(k)
        )
        for width, height in sizes:
            outcome = synthesise(
                problem,
                k,
                width,
                height,
                engine=engine,
                csp_node_budget=csp_node_budget,
                sat_conflict_budget=sat_conflict_budget,
            )
            search.attempts.append(outcome)
            if outcome.success:
                search.best = outcome
                return search
    return search
