"""The tile neighbourhood graph (Section 7).

The nodes of the graph are the ``width x height`` tiles; a *horizontal edge*
connects two tiles that can be the anchor windows of two horizontally
adjacent grid nodes, and is obtained from a ``(width+1) x height`` tile by
splitting it into its west and east sub-windows.  Vertical edges come from
``width x (height+1)`` tiles in the same way.

A labelling of the tiles with output labels that satisfies the problem's
pair relations on every horizontal and vertical edge is exactly the finite
function ``A'`` of the normal form.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from repro.errors import SynthesisError
from repro.grid.subgrid import Window
from repro.synthesis.tiles import enumerate_tiles


@dataclass
class TileGraph:
    """Tiles plus the horizontal/vertical adjacency constraints between them."""

    width: int
    height: int
    k: int
    tiles: Tuple[Window, ...] = ()
    horizontal_pairs: Set[Tuple[Window, Window]] = field(default_factory=set)
    vertical_pairs: Set[Tuple[Window, Window]] = field(default_factory=set)

    @property
    def tile_count(self) -> int:
        """Number of distinct tiles (nodes of the graph)."""
        return len(self.tiles)

    @property
    def edge_count(self) -> int:
        """Total number of (directed) horizontal plus vertical pairs."""
        return len(self.horizontal_pairs) + len(self.vertical_pairs)

    def undirected_adjacency(self) -> Dict[Window, Set[Window]]:
        """Adjacency ignoring the direction and orientation of the pairs.

        Useful for problems whose pair relations are symmetric difference
        constraints (proper colourings): the synthesis then reduces to graph
        colouring of this adjacency structure.
        """
        adjacency: Dict[Window, Set[Window]] = {tile: set() for tile in self.tiles}
        for first, second in list(self.horizontal_pairs) + list(self.vertical_pairs):
            if first != second:
                adjacency[first].add(second)
                adjacency[second].add(first)
        return adjacency

    def validate_heredity(self) -> None:
        """Check that every endpoint of every pair is an enumerated tile."""
        tile_set = set(self.tiles)
        for first, second in list(self.horizontal_pairs) + list(self.vertical_pairs):
            if first not in tile_set or second not in tile_set:
                raise SynthesisError(
                    "tile heredity violated: an edge endpoint is not an enumerated tile"
                )


# Tile graphs are pure functions of (width, height, k) and expensive to
# build (three tile enumerations); sweeps revisit the same parameters for
# every problem, so built graphs are shared per process.  Treat cached
# graphs as immutable — no caller mutates them.
_GRAPH_CACHE: Dict[Tuple[int, int, int], TileGraph] = {}


def clear_tile_graph_cache() -> None:
    """Drop all cached tile graphs (see :func:`clear_synthesis_cache`)."""
    _GRAPH_CACHE.clear()


def build_tile_graph(width: int, height: int, k: int) -> TileGraph:
    """Enumerate tiles and their adjacency constraints for the given window size.

    The built graph is cached per ``(width, height, k)`` and shared across
    problems and sweeps (do not mutate it); the enumeration cost is paid
    once per process, like the indexer's ball tables.
    """
    cached = _GRAPH_CACHE.get((width, height, k))
    if cached is not None:
        return cached
    tiles = enumerate_tiles(width, height, k)
    tile_set = set(tiles)

    horizontal_pairs: Set[Tuple[Window, Window]] = set()
    for wide in enumerate_tiles(width + 1, height, k):
        west = wide.west_part()
        east = wide.east_part()
        if west in tile_set and east in tile_set:
            horizontal_pairs.add((west, east))
        else:  # pragma: no cover - heredity guarantees this never happens
            raise SynthesisError("sub-window of a tile is not a tile; enumeration is inconsistent")

    vertical_pairs: Set[Tuple[Window, Window]] = set()
    for tall in enumerate_tiles(width, height + 1, k):
        south = tall.south_part()
        north = tall.north_part()
        if south in tile_set and north in tile_set:
            vertical_pairs.add((south, north))
        else:  # pragma: no cover
            raise SynthesisError("sub-window of a tile is not a tile; enumeration is inconsistent")

    graph = TileGraph(
        width=width,
        height=height,
        k=k,
        tiles=tiles,
        horizontal_pairs=horizontal_pairs,
        vertical_pairs=vertical_pairs,
    )
    graph.validate_heredity()
    _GRAPH_CACHE[(width, height, k)] = graph
    return graph


def occurring_windows(
    tiles: Sequence[Window],
) -> Dict[int, List[Window]]:
    """Group tiles by their number of anchors (diagnostic helper)."""
    grouped: Dict[int, List[Window]] = {}
    for tile in tiles:
        grouped.setdefault(tile.count(1), []).append(tile)
    return grouped
