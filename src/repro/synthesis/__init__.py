"""Automated synthesis of normal-form algorithms (Section 7, Appendix A.1).

Given an LCL problem with pairwise constraints and a candidate anchor
spacing ``k``, the synthesis engine

1. enumerates all *tiles* — window patterns of anchor bits that can occur in
   a maximal independent set of ``G^(k)`` (:mod:`repro.synthesis.tiles`),
2. builds the tile neighbourhood graph whose edges are the windows one cell
   wider/taller (:mod:`repro.synthesis.tile_graph`),
3. searches for an assignment of output labels to tiles satisfying the
   problem's constraints on every edge, using either a backtracking CSP
   solver (:mod:`repro.synthesis.csp`) or a from-scratch DPLL SAT solver
   (:mod:`repro.synthesis.sat`, :mod:`repro.synthesis.encode`), and
4. packages a successful assignment as a runtime lookup-table algorithm of
   the normal form ``A' ∘ S_k`` (:mod:`repro.synthesis.lookup`).

If the problem is global the search never succeeds — by Theorem 3 this
cannot be detected in general, which is why the synthesis loop takes
explicit budgets instead of promising termination.
"""

from repro.synthesis.tiles import enumerate_tiles, is_tile
from repro.synthesis.tile_graph import TileGraph, build_tile_graph
from repro.synthesis.csp import BinaryCSP, CSPResult, solve_binary_csp
from repro.synthesis.sat import CNF, SATResult, solve_cnf
from repro.synthesis.encode import encode_tile_labelling_as_sat
from repro.synthesis.synthesiser import (
    SynthesisOutcome,
    clear_synthesis_cache,
    synthesise,
    synthesise_with_budget,
)
from repro.synthesis.lookup import LookupAnchorRule, build_lookup_algorithm

__all__ = [
    "BinaryCSP",
    "CNF",
    "CSPResult",
    "LookupAnchorRule",
    "SATResult",
    "SynthesisOutcome",
    "TileGraph",
    "build_lookup_algorithm",
    "build_tile_graph",
    "clear_synthesis_cache",
    "encode_tile_labelling_as_sat",
    "enumerate_tiles",
    "is_tile",
    "solve_binary_csp",
    "solve_cnf",
    "synthesise",
    "synthesise_with_budget",
]
