"""Runtime lookup-table algorithms produced by synthesis.

A successful synthesis outcome is a finite map from anchor windows (tiles)
to output labels.  Wrapping it in an :class:`repro.speedup.normal_form.AnchorRule`
and composing with the anchor computation ``S_k`` yields a complete
``Θ(log* n)`` algorithm — the concrete realisation of Figure 1.

Tables can be serialised to plain dictionaries (and back) so that expensive
synthesis runs — most notably 4-colouring at ``k = 3`` with 7×5 windows —
can be cached on disk and reused by the examples and benchmarks.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Tuple

from repro.errors import SynthesisError
from repro.grid.subgrid import Window
from repro.speedup.normal_form import AnchorRule, NormalFormAlgorithm
from repro.synthesis.synthesiser import SynthesisOutcome


class LookupAnchorRule(AnchorRule):
    """The finite rule ``A'`` given explicitly as a tile-to-label table."""

    def __init__(self, width: int, height: int, table: Mapping[Window, Any]):
        if not table:
            raise SynthesisError("a lookup rule needs a non-empty table")
        self.width = width
        self.height = height
        self._table = dict(table)

    @property
    def table(self) -> Dict[Window, Any]:
        """The underlying tile-to-label table (a copy is not made)."""
        return self._table

    def output(self, window: Window) -> Any:
        try:
            return self._table[window]
        except KeyError:
            raise SynthesisError(
                "anchor window not covered by the lookup table; either the anchor "
                "set is not a maximal independent set of G^(k), or the grid is too "
                "small for the chosen window size\n" + str(window)
            ) from None


def build_lookup_algorithm(outcome: SynthesisOutcome, name: str = "") -> NormalFormAlgorithm:
    """Package a successful synthesis outcome as a runnable normal-form algorithm."""
    if not outcome.success or outcome.table is None:
        raise SynthesisError(
            f"cannot build an algorithm from a failed synthesis outcome for "
            f"{outcome.problem_name!r}"
        )
    rule = LookupAnchorRule(outcome.width, outcome.height, outcome.table)
    return NormalFormAlgorithm(
        rule=rule,
        k=outcome.k,
        name=name or f"{outcome.problem_name}-normal-form",
    )


def table_to_serialisable(table: Mapping[Window, Any]) -> List[Tuple[List[List[int]], Any]]:
    """Convert a rule table into JSON-friendly nested lists."""
    serialised = []
    for window, label in table.items():
        serialised.append(([list(column) for column in window.cells], label))
    return serialised


def table_from_serialisable(data: List[Tuple[List[List[int]], Any]]) -> Dict[Window, Any]:
    """Inverse of :func:`table_to_serialisable`."""
    table: Dict[Window, Any] = {}
    for cells, label in data:
        window = Window(tuple(tuple(column) for column in cells))
        table[window] = label
    return table
