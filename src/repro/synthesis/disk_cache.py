"""On-disk persistence of successful synthesis outcomes.

The in-process outcome cache of :mod:`repro.synthesis.synthesiser` dies
with the interpreter, so every fresh process re-pays the CSP/SAT search —
exactly what :mod:`repro.synthesis.pretrained` works around for the one
shipped 4-colouring table.  This module generalises that: every successful
:class:`~repro.synthesis.synthesiser.SynthesisOutcome` can be written to a
JSON document mirroring the shipped ``fourcol_table_k3_7x5.json`` format
(serialised via :func:`repro.synthesis.lookup.table_to_serialisable`) and
loaded back on the next in-process cache miss.

Keys and safety
---------------

Documents are keyed by a *fingerprint* of the in-process cache key
``(problem, k, width, height, engine, csp_node_budget,
sat_conflict_budget)``: the problem contributes its name, alphabet, the
per-label node predicate values and the explicit horizontal/vertical pair
relations — everything the tile CSP/SAT actually consults (synthesis only
accepts pairwise problems), so two problems with equal fingerprints
provably synthesise identically.  The fingerprint is stored inside the
document and re-checked on load, so a digest collision or a renamed file
cannot smuggle in a foreign table; each loaded label is additionally
re-checked against the problem's node predicate.  Corrupt or truncated
files are treated as cache misses (and overwritten by the next successful
solve), never as errors.

Labels and alphabet entries round-trip through ``repr`` /
:func:`ast.literal_eval`; outcomes whose labels do not survive that
round-trip (exotic objects) are silently not persisted — the disk cache
is strictly best-effort.

Location
--------

Documents live under ``$REPRO_CACHE_DIR/synthesis`` when the
:data:`CACHE_DIR_VARIABLE` environment variable is set (an empty value
disables the disk cache entirely), defaulting to
``~/.cache/repro/synthesis``.  The repository's test suite pins the
variable to a per-session temporary directory, keeping runs hermetic.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

#: Environment variable overriding the cache root directory.  An empty
#: value disables on-disk persistence.
CACHE_DIR_VARIABLE = "REPRO_CACHE_DIR"

#: Format marker stored in every document; bump on incompatible changes so
#: stale documents read as misses instead of parse errors.
FORMAT_VERSION = 1


def synthesis_cache_dir() -> Optional[Path]:
    """The directory holding cached outcomes, or ``None`` when disabled."""
    raw = os.environ.get(CACHE_DIR_VARIABLE)
    if raw is not None:
        if not raw:
            return None
        return Path(raw) / "synthesis"
    return Path.home() / ".cache" / "repro" / "synthesis"


def _reprs(values) -> List[str]:
    return [repr(value) for value in values]


def _relation_fingerprint(relation) -> Optional[List[str]]:
    if relation is None:
        return None
    return sorted(repr(pair) for pair in relation.allowed)


def problem_fingerprint(problem) -> Dict[str, Any]:
    """Everything about ``problem`` the pairwise tile synthesis consults.

    Name, alphabet (label reprs in order), the node predicate's value on
    every label, and the explicit horizontal/vertical pair relations.
    Cross predicates never appear: :func:`repro.synthesis.synthesiser.synthesise`
    rejects non-pairwise problems before any caching happens.
    """
    return {
        "name": problem.name,
        "alphabet": _reprs(problem.alphabet),
        "node_ok": [bool(problem.node_ok(label)) for label in problem.alphabet],
        "horizontal": _relation_fingerprint(problem.horizontal),
        "vertical": _relation_fingerprint(problem.vertical),
    }


def _document_key(problem, cache_key: Tuple) -> Dict[str, Any]:
    _, k, width, height, engine, csp_node_budget, sat_conflict_budget = cache_key
    return {
        "version": FORMAT_VERSION,
        "problem": problem_fingerprint(problem),
        "k": k,
        "width": width,
        "height": height,
        "engine": engine,
        "csp_node_budget": csp_node_budget,
        "sat_conflict_budget": sat_conflict_budget,
    }


def cache_path(problem, cache_key: Tuple) -> Optional[Path]:
    """The document path of one cache key, or ``None`` when disabled."""
    directory = synthesis_cache_dir()
    if directory is None:
        return None
    digest = hashlib.sha256(
        json.dumps(_document_key(problem, cache_key), sort_keys=True).encode("utf-8")
    ).hexdigest()
    return directory / f"synthesis_{digest[:32]}.json"


def _labels_roundtrip(labels) -> bool:
    for label in labels:
        try:
            if ast.literal_eval(repr(label)) != label:
                return False
        except (ValueError, SyntaxError, MemoryError, TypeError):
            return False
    return True


def store_outcome(problem, cache_key: Tuple, outcome) -> Optional[Path]:
    """Persist a successful outcome; best-effort, returns the path or ``None``.

    Failed outcomes are never persisted (a larger budget could change
    them, and the in-process cache skips them for the same reason).
    """
    if not outcome.success or outcome.table is None:
        return None
    path = cache_path(problem, cache_key)
    if path is None:
        return None
    if not _labels_roundtrip(outcome.table.values()):
        return None
    from repro.synthesis.lookup import table_to_serialisable

    document = {
        "key": _document_key(problem, cache_key),
        "problem_name": outcome.problem_name,
        "used_engine": outcome.engine,
        "tile_count": outcome.tile_count,
        "horizontal_pairs": outcome.horizontal_pairs,
        "vertical_pairs": outcome.vertical_pairs,
        "stats": dict(outcome.stats),
        "table": [
            [cells, repr(label)]
            for cells, label in table_to_serialisable(outcome.table)
        ],
    }
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        scratch = path.with_name(path.name + f".tmp{os.getpid()}")
        scratch.write_text(json.dumps(document, sort_keys=True))
        os.replace(scratch, path)
    except OSError:
        return None
    return path


def load_outcome(problem, cache_key: Tuple):
    """Load a previously stored outcome, or ``None`` on any kind of miss.

    Misses include: disk cache disabled, file absent, unparseable JSON,
    format/fingerprint mismatch (the stored key is compared field by field
    against the requested one), labels failing ``literal_eval`` or the
    problem's node predicate.  The caller treats every ``None`` as "solve
    from scratch".
    """
    path = cache_path(problem, cache_key)
    if path is None:
        return None
    try:
        document = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    if not isinstance(document, dict):
        return None
    if document.get("key") != _document_key(problem, cache_key):
        return None
    serialised = document.get("table")
    if not isinstance(serialised, list) or not serialised:
        return None
    from repro.grid.subgrid import Window
    from repro.synthesis.synthesiser import SynthesisOutcome

    _, k, width, height, _, _, _ = cache_key
    table: Dict[Window, Any] = {}
    try:
        for cells, label_repr in serialised:
            window = Window(tuple(tuple(column) for column in cells))
            if window.width != width or any(
                len(column) != height for column in window.cells
            ):
                # A tampered or bit-flipped document: a fresh solve's
                # table only ever contains full-size anchor windows, and
                # a mis-shaped key would surface as a runtime KeyError
                # long after the cache hit.
                return None
            label = ast.literal_eval(label_repr)
            if not problem.node_ok(label):
                return None
            table[window] = label
    except (TypeError, ValueError, SyntaxError, MemoryError):
        return None
    if int(document.get("tile_count", len(table))) != len(table):
        return None
    return SynthesisOutcome(
        problem_name=document.get("problem_name", problem.name),
        k=k,
        width=width,
        height=height,
        success=True,
        table=table,
        tile_count=int(document.get("tile_count", len(table))),
        horizontal_pairs=int(document.get("horizontal_pairs", 0)),
        vertical_pairs=int(document.get("vertical_pairs", 0)),
        engine=document.get("used_engine", "csp"),
        exhausted_budget=False,
        stats={
            key: value for key, value in dict(document.get("stats", {})).items()
        },
    )
