"""Low-overhead span tracing for the engine stack.

The tracer records a tree of **spans** — simulation → schedule → round →
tier-dispatch → worker chunk — and exports them as Chrome trace-event
JSON (loadable at https://ui.perfetto.dev) or a plain-text tree report.

It is **off by default** and the disabled path is engineered to cost
nothing measurable:

* ``ACTIVE`` is a module-level global; hot sites read it once and skip
  all tracing work with a single ``is None`` check::

      tracer = _trace.ACTIVE
      if tracer is not None:
          with tracer.span("round", tier=tier):
              ...

* the convenience helpers :func:`span`/:func:`instant` return the shared
  :data:`NOOP_SPAN` singleton when disabled, so cool sites can call them
  unconditionally without allocating a real span.

Enable it either programmatically (:func:`install`, or the
:func:`capture` context manager, which restores the previous tracer on
exit) or by setting ``REPRO_TRACE=1`` in the environment, in which case
the trace is exported at interpreter exit to ``REPRO_TRACE_FILE``
(default ``repro-trace.json``).  Forked pool workers inherit the parent's
tracer object but never export it — the atexit hook is pinned to the
installing process id.

Timestamps come from :data:`clock` (``time.perf_counter``).  This module
is the stack's only sanctioned timing source: the ``observability``
contract check (``python -m repro.statics``) flags ad-hoc ``time.*``
timing calls elsewhere under ``src/``.
"""

from __future__ import annotations

import atexit
import json
import os
import time
from contextlib import contextmanager
from types import TracebackType
from typing import Any, Dict, Iterator, List, Optional, Tuple, Type, Union

clock = time.perf_counter

TRACE_VARIABLE = "REPRO_TRACE"
TRACE_FILE_VARIABLE = "REPRO_TRACE_FILE"
DEFAULT_TRACE_FILE = "repro-trace.json"

#: Spans stop being recorded (and are counted as dropped) beyond this,
#: so a runaway schedule cannot exhaust parent memory.
DEFAULT_MAX_SPANS = 1_000_000

# Canonical span names, pinned by tests and documented in
# docs/observability.md — emit these rather than ad-hoc strings so the
# CLI and the benchmark aggregator can recognise them.
SPAN_SCHEDULE = "run_schedule"
SPAN_PHASE = "phase"
SPAN_ROUND = "round"
SPAN_TIER_DISPATCH = "tier-dispatch"
SPAN_POOL_ROUND = "pool-round"
SPAN_WORKER_CHUNK = "worker-chunk"
SPAN_RESOLVE_ENGINE = "resolve_engine"


class Span:
    """One node of the trace tree; also its own ``with`` handle.

    ``start`` is seconds relative to the owning tracer's epoch;
    ``duration`` is filled in on exit (it stays ``0.0`` for instants,
    ``phase == "i"``).
    """

    __slots__ = ("name", "start", "duration", "tid", "phase", "args", "children", "_tracer")

    def __init__(
        self,
        name: str,
        start: float,
        tid: int = 0,
        phase: str = "X",
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.name = name
        self.start = start
        self.duration = 0.0
        self.tid = tid
        self.phase = phase
        self.args = args
        self.children: List[Span] = []
        self._tracer: Optional[Tracer] = None

    def __enter__(self) -> "Span":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> bool:
        tracer = self._tracer
        if tracer is not None:
            tracer._exit(self, exc_type)
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, start={self.start:.6f}, duration={self.duration:.6f})"


class _NoopSpan:
    """Shared do-nothing ``with`` handle for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> bool:
        return False


NOOP_SPAN = _NoopSpan()

SpanLike = Union[Span, _NoopSpan]


class Tracer:
    """Records a forest of :class:`Span` trees against one epoch."""

    def __init__(self, max_spans: int = DEFAULT_MAX_SPANS) -> None:
        self.epoch = clock()
        self.roots: List[Span] = []
        self.max_spans = max_spans
        self.dropped = 0
        self._stack: List[Span] = []
        self._count = 0

    # -- recording ---------------------------------------------------------

    def span(self, name: str, **args: Any) -> SpanLike:
        """Open a nested span; use as ``with tracer.span("round", tier=t):``."""
        if self._count >= self.max_spans:
            self.dropped += 1
            return NOOP_SPAN
        span = Span(name, clock() - self.epoch, args=args or None)
        span._tracer = self
        self._attach(span)
        self._stack.append(span)
        return span

    def instant(self, name: str, **args: Any) -> None:
        """Record a zero-duration marker at the current position."""
        if self._count >= self.max_spans:
            self.dropped += 1
            return
        self._attach(Span(name, clock() - self.epoch, phase="i", args=args or None))

    def record(self, name: str, duration: float, tid: int = 0, **args: Any) -> None:
        """Attach a completed span whose duration was measured elsewhere.

        This is how worker-side chunk timings (measured in the forked
        child, shipped back on the reply message) merge into the parent
        trace: the span is back-dated to ``now - duration``, clamped to
        its parent's start so the tree stays well-nested.
        """
        if self._count >= self.max_spans:
            self.dropped += 1
            return
        now = clock() - self.epoch
        start = now - max(duration, 0.0)
        if self._stack and start < self._stack[-1].start:
            start = self._stack[-1].start
        span = Span(name, start, tid=tid, args=args or None)
        span.duration = max(duration, 0.0)
        self._attach(span)

    def _attach(self, span: Span) -> None:
        self._count += 1
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)

    def _exit(self, span: Span, exc_type: Optional[Type[BaseException]]) -> None:
        span.duration = clock() - self.epoch - span.start
        if exc_type is not None:
            args = dict(span.args) if span.args else {}
            args.setdefault("error", exc_type.__name__)
            span.args = args
        # Pop defensively down to the exiting span so one forgotten exit
        # cannot skew every later attachment.
        while self._stack:
            if self._stack.pop() is span:
                break

    # -- introspection -----------------------------------------------------

    @property
    def span_count(self) -> int:
        return self._count

    def walk(self) -> Iterator[Tuple[Span, int]]:
        """Yield every recorded span depth-first with its nesting depth."""
        stack: List[Tuple[Span, int]] = [(span, 0) for span in reversed(self.roots)]
        while stack:
            span, depth = stack.pop()
            yield span, depth
            for child in reversed(span.children):
                stack.append((child, depth + 1))

    def find(self, name: str) -> List[Span]:
        return [span for span, _ in self.walk() if span.name == name]

    # -- export ------------------------------------------------------------

    def to_chrome(self) -> Dict[str, Any]:
        """The trace as a Chrome trace-event document (Perfetto-loadable).

        Complete spans become ``ph: "X"`` events, instants ``ph: "i"``;
        timestamps and durations are microseconds as the format requires.
        A ``repro`` section carries span counts (and, when exported via
        :func:`write_trace`, the metrics snapshot and decision log).
        """
        pid = os.getpid()
        events: List[Dict[str, Any]] = []
        for span, _ in self.walk():
            event: Dict[str, Any] = {
                "name": span.name,
                "ph": span.phase,
                "ts": span.start * 1e6,
                "pid": pid,
                "tid": span.tid,
                "args": span.args or {},
            }
            if span.phase == "X":
                event["dur"] = span.duration * 1e6
            else:
                event["s"] = "t"
            events.append(event)
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "repro": {"spans": self._count, "dropped": self.dropped},
        }

    def render_tree(self, max_depth: Optional[int] = None) -> str:
        """Plain-text tree report: one line per span, indented by depth."""
        lines: List[str] = []
        for span, depth in self.walk():
            if max_depth is not None and depth > max_depth:
                continue
            label = "· " + span.name if span.phase == "i" else span.name
            detail = f" {span.duration * 1e3:.3f}ms" if span.phase == "X" else ""
            args = ""
            if span.args:
                args = " " + " ".join(f"{key}={value!r}" for key, value in sorted(span.args.items()))
            lines.append(f"{'  ' * depth}{label}{detail}{args}")
        if self.dropped:
            lines.append(f"... {self.dropped} span(s) dropped past the {self.max_spans} cap")
        return "\n".join(lines)


# -- the module-level switchboard ------------------------------------------

#: The installed tracer, or ``None`` when tracing is disabled.  Hot sites
#: read this directly; everything else goes through the helpers below.
ACTIVE: Optional[Tracer] = None


def current() -> Optional[Tracer]:
    return ACTIVE


def install(tracer: Optional[Tracer] = None) -> Tracer:
    """Install ``tracer`` (or a fresh one) as the active tracer."""
    global ACTIVE
    ACTIVE = tracer if tracer is not None else Tracer()
    return ACTIVE


def uninstall() -> Optional[Tracer]:
    """Disable tracing; returns the tracer that was active."""
    global ACTIVE
    previous = ACTIVE
    ACTIVE = None
    return previous


@contextmanager
def capture(tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Trace the enclosed block, restoring the previous tracer on exit."""
    global ACTIVE
    previous = ACTIVE
    active = install(tracer)
    try:
        yield active
    finally:
        ACTIVE = previous


@contextmanager
def disabled() -> Iterator[None]:
    """Force-disable tracing for the enclosed block (benchmark baselines)."""
    global ACTIVE
    previous = ACTIVE
    ACTIVE = None
    try:
        yield
    finally:
        ACTIVE = previous


def span(name: str, **args: Any) -> SpanLike:
    """Open a span on the active tracer, or return :data:`NOOP_SPAN`."""
    tracer = ACTIVE
    if tracer is None:
        return NOOP_SPAN
    return tracer.span(name, **args)


def instant(name: str, **args: Any) -> None:
    tracer = ACTIVE
    if tracer is not None:
        tracer.instant(name, **args)


# -- export ----------------------------------------------------------------


def chrome_document(tracer: Tracer) -> Dict[str, Any]:
    """The full export payload: trace events + metrics + decision log."""
    from repro.observability import decision, metrics

    document = tracer.to_chrome()
    document["repro"]["metrics"] = metrics.registry().snapshot()
    document["repro"]["decisions"] = [entry.to_json() for entry in decision.recent_decisions()]
    return document


def write_trace(tracer: Tracer, path: Union[str, "os.PathLike[str]"]) -> str:
    """Atomically write the Chrome trace JSON for ``tracer`` to ``path``."""
    destination = os.fspath(path)
    payload = json.dumps(chrome_document(tracer), sort_keys=True)
    scratch = f"{destination}.tmp.{os.getpid()}"
    with open(scratch, "w", encoding="utf-8") as handle:
        handle.write(payload)
    os.replace(scratch, destination)
    return destination


def _env_enabled(value: Optional[str]) -> bool:
    return (value or "").strip().lower() in {"1", "true", "yes", "on"}


def _install_from_env() -> None:
    if not _env_enabled(os.environ.get(TRACE_VARIABLE)):
        return
    tracer = install()
    owner_pid = os.getpid()

    def _export_at_exit() -> None:
        # Forked pool workers inherit this hook with the parent's tracer;
        # only the installing process may write the trace file.
        if os.getpid() != owner_pid:
            return
        path = os.environ.get(TRACE_FILE_VARIABLE) or DEFAULT_TRACE_FILE
        try:
            write_trace(tracer, path)
        except Exception:  # pragma: no cover - atexit must never raise
            pass

    atexit.register(_export_at_exit)


_install_from_env()
