"""``python -m repro.observability`` — render an exported trace.

Reads a Chrome trace-event JSON produced by
:func:`repro.observability.trace.write_trace` (typically
``repro-trace.json`` from a ``REPRO_TRACE=1`` run) and prints a
plain-text report: the span tree rebuilt from the flat event list, the
metrics snapshot, and the engine-decision log.  ``--format json`` dumps
the machine-readable ``repro`` section instead, for scripting.

The span tree is reconstructed per ``(pid, tid)`` lane by interval
containment — a complete event nests under the closest earlier event
whose ``[ts, ts+dur]`` window still covers it — so any well-nested trace
renders faithfully even though the wire format is flat.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.observability.trace import DEFAULT_TRACE_FILE, TRACE_FILE_VARIABLE


class TraceFormatError(ValueError):
    """The input file is not a Chrome trace-event document."""


def load_trace(path: str) -> Dict[str, Any]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise TraceFormatError(f"cannot read trace file {path!r}: {exc}") from exc
    if not isinstance(payload, dict) or not isinstance(payload.get("traceEvents"), list):
        raise TraceFormatError(
            f"{path!r} is not a Chrome trace-event document (no traceEvents list)"
        )
    return payload


def _lane(event: Dict[str, Any]) -> Tuple[Any, Any]:
    return event.get("pid", 0), event.get("tid", 0)


def render_events(events: Sequence[Dict[str, Any]], max_depth: Optional[int] = None) -> str:
    """The plain-text span tree for a flat Chrome event list."""
    lanes: Dict[Tuple[Any, Any], List[Dict[str, Any]]] = {}
    for event in events:
        if event.get("ph") in ("X", "i") and isinstance(event.get("ts"), (int, float)):
            lanes.setdefault(_lane(event), []).append(event)

    lines: List[str] = []
    for lane in sorted(lanes, key=repr):
        if len(lanes) > 1:
            lines.append(f"[pid={lane[0]} tid={lane[1]}]")
        # Sort by start, longest-first on ties, so parents precede children.
        ordered = sorted(
            lanes[lane], key=lambda event: (event["ts"], -float(event.get("dur", 0.0)))
        )
        open_spans: List[Tuple[float, int]] = []  # (end timestamp, depth)
        for event in ordered:
            ts = float(event["ts"])
            while open_spans and open_spans[-1][0] <= ts:
                open_spans.pop()
            depth = open_spans[-1][1] + 1 if open_spans else 0
            if max_depth is not None and depth > max_depth:
                continue
            name = str(event.get("name", "?"))
            args = event.get("args") or {}
            suffix = ""
            if args:
                suffix = " " + " ".join(f"{key}={value!r}" for key, value in sorted(args.items()))
            if event.get("ph") == "i":
                lines.append(f"{'  ' * depth}· {name}{suffix}")
            else:
                duration = float(event.get("dur", 0.0))
                lines.append(f"{'  ' * depth}{name} {duration / 1e3:.3f}ms{suffix}")
                open_spans.append((ts + duration, depth))
    return "\n".join(lines)


def _render_metrics(snapshot: Dict[str, Any]) -> str:
    lines: List[str] = []
    for name, value in sorted((snapshot.get("counters") or {}).items()):
        lines.append(f"{name} = {value}")
    for name, summary in sorted((snapshot.get("summaries") or {}).items()):
        lines.append(
            f"{name}: count={summary.get('count', 0)} mean={summary.get('mean', 0.0):.6f}s"
            f" max={summary.get('max', 0.0):.6f}s"
        )
    return "\n".join(lines)


def _render_decisions(decisions: Sequence[Dict[str, Any]]) -> str:
    lines: List[str] = []
    for entry in decisions:
        kind = "resolve_vector_engine" if entry.get("vector") else "resolve_engine"
        lines.append(f"{kind}({entry.get('requested')!r}) -> {entry.get('resolved')!r}")
        for rung in entry.get("rungs") or []:
            verdict = "accepted" if rung.get("accepted") else "rejected"
            lines.append(f"  {rung.get('tier')}: {verdict} — {rung.get('reason')}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.observability",
        description="Render a Chrome trace exported by a REPRO_TRACE=1 run.",
    )
    parser.add_argument(
        "trace",
        nargs="?",
        default=None,
        help=f"trace file (default: ${TRACE_FILE_VARIABLE} or {DEFAULT_TRACE_FILE})",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="text report (default) or the machine-readable repro section",
    )
    parser.add_argument(
        "--depth",
        type=int,
        default=None,
        help="limit the span tree to this nesting depth",
    )
    parser.add_argument(
        "--section",
        choices=("all", "spans", "metrics", "decisions"),
        default="all",
        help="which report section to print (default: all)",
    )
    args = parser.parse_args(argv)

    path = args.trace or os.environ.get(TRACE_FILE_VARIABLE) or DEFAULT_TRACE_FILE
    try:
        payload = load_trace(path)
    except TraceFormatError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    repro_section = payload.get("repro") or {}
    if args.format == "json":
        json.dump(repro_section, sys.stdout, indent=2, sort_keys=True)
        print()
        return 0

    events = payload["traceEvents"]
    if args.section in ("all", "spans"):
        print(f"-- spans ({len(events)} events, {path}) --")
        tree = render_events(events, max_depth=args.depth)
        if tree:
            print(tree)
    if args.section in ("all", "metrics"):
        metrics_snapshot = repro_section.get("metrics") or {}
        rendered = _render_metrics(metrics_snapshot)
        print("-- metrics --")
        if rendered:
            print(rendered)
    if args.section in ("all", "decisions"):
        decisions = repro_section.get("decisions") or []
        print(f"-- engine decisions ({len(decisions)}) --")
        rendered = _render_decisions(decisions)
        if rendered:
            print(rendered)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())
