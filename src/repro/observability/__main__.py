"""Entry point for ``python -m repro.observability``."""

from repro.observability.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
