"""Always-on counters and latency summaries for the engine stack.

Unlike the tracer (off by default, per-run), the metrics registry is a
cheap process-global accumulator: engines bump counters every round
whether or not anyone is looking, and the registry is folded into every
trace export and queryable via :func:`registry`.

Two instrument kinds:

* **counters** — monotonically increasing integers
  (``engine_rounds_total{tier=table}``, ``pool_heals_total``, ...);
* **summaries** — count/total/min/max over observed values
  (``pool_round_barrier_seconds``, ``worker_chunk_seconds``) — a
  histogram-lite that answers "how many, how long on average, how bad
  was the worst" without bucket configuration.

Labels are passed as keyword arguments and coerced to strings; each
distinct label combination is its own series, so label values must come
from small closed sets (tier names, booleans, event kinds) — never node
counts or rule reprs.

:func:`record_event` is the bridge from the telemetry event bus
(:mod:`repro.runtime.telemetry`): every published ``DegradeEvent`` /
``StaticsEvent`` lands here as a counter bump, keyed by the event's
``event`` tag, without this module importing the runtime layer.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Tuple

from repro.observability.trace import clock

MetricKey = Tuple[str, Tuple[Tuple[str, str], ...]]


class Summary:
    """count/total/min/max over observed values (a bucketless histogram)."""

    __slots__ = ("count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def to_json(self) -> Dict[str, float]:
        if not self.count:
            return {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.total / self.count,
        }


def _key(name: str, labels: Dict[str, Any]) -> MetricKey:
    if not labels:
        return name, ()
    return name, tuple(sorted((key, str(value)) for key, value in labels.items()))


def _flat(key: MetricKey) -> str:
    name, labels = key
    if not labels:
        return name
    return name + "{" + ",".join(f"{label}={value}" for label, value in labels) + "}"


class MetricsRegistry:
    """Thread-safe counter/summary store keyed by (name, sorted labels)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[MetricKey, int] = {}
        self._summaries: Dict[MetricKey, Summary] = {}

    def inc(self, name: str, amount: int = 1, **labels: Any) -> None:
        key = _key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + amount

    def observe(self, name: str, value: float, **labels: Any) -> None:
        key = _key(name, labels)
        with self._lock:
            summary = self._summaries.get(key)
            if summary is None:
                summary = self._summaries[key] = Summary()
            summary.observe(value)

    @contextmanager
    def timed(self, name: str, **labels: Any) -> Iterator[None]:
        """Observe the wall time of the enclosed block into ``name``."""
        started = clock()
        try:
            yield
        finally:
            self.observe(name, clock() - started, **labels)

    def counter(self, name: str, **labels: Any) -> int:
        """Read one counter series (0 when never incremented)."""
        with self._lock:
            return self._counters.get(_key(name, labels), 0)

    def counter_total(self, name: str) -> int:
        """Sum of every series of ``name`` across all label combinations."""
        with self._lock:
            return sum(value for key, value in self._counters.items() if key[0] == name)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready dump: ``{"counters": {...}, "summaries": {...}}``."""
        with self._lock:
            return {
                "counters": {_flat(key): value for key, value in sorted(self._counters.items())},
                "summaries": {
                    _flat(key): summary.to_json()
                    for key, summary in sorted(self._summaries.items(), key=lambda item: item[0])
                },
            }

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._summaries.clear()


_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-global registry (forked workers get their own copy)."""
    return _REGISTRY


def record_event(event: Any) -> None:
    """Event-bus subscriber: fold a telemetry event into the registry.

    Events are duck-typed via their ``event`` class tag so this module
    never imports :mod:`repro.runtime.telemetry` (which imports us).
    """
    tag = getattr(event, "event", None)
    if tag == "degrade":
        _REGISTRY.inc(
            "telemetry_degrade_events_total",
            healed="true" if getattr(event, "healed", False) else "false",
        )
    elif tag == "statics":
        _REGISTRY.inc("telemetry_statics_events_total", kind=getattr(event, "kind", "unknown"))
