"""Observability for the five-tier engine stack: tracing, metrics, decisions.

Three cooperating modules, all dependency-free with respect to the rest
of the package (the engine/runtime layers import *us*, never the other
way around):

* :mod:`repro.observability.trace` — nested span tracer, off by default
  (``REPRO_TRACE=1`` or :func:`~repro.observability.trace.install`),
  exporting Chrome trace-event JSON and a plain-text tree;
* :mod:`repro.observability.metrics` — always-on counters and latency
  summaries, folded into every trace export;
* :mod:`repro.observability.decision` — structured
  ``resolve_engine`` decision traces, queryable via
  :func:`~repro.observability.decision.last_decision`.

``python -m repro.observability`` renders an exported trace.  See
``docs/observability.md`` for the span model and metric catalogue.
"""

from repro.observability.decision import (
    DecisionRecorder,
    DecisionRung,
    EngineDecision,
    last_decision,
    recent_decisions,
)
from repro.observability.metrics import MetricsRegistry, record_event, registry
from repro.observability.trace import (
    NOOP_SPAN,
    Span,
    Tracer,
    capture,
    chrome_document,
    current,
    disabled,
    install,
    instant,
    span,
    uninstall,
    write_trace,
)

__all__ = [
    "DecisionRecorder",
    "DecisionRung",
    "EngineDecision",
    "last_decision",
    "recent_decisions",
    "MetricsRegistry",
    "record_event",
    "registry",
    "NOOP_SPAN",
    "Span",
    "Tracer",
    "capture",
    "chrome_document",
    "current",
    "disabled",
    "install",
    "instant",
    "span",
    "uninstall",
    "write_trace",
]
