"""Engine-decision explainability: why ``auto`` picked the tier it did.

``resolve_engine``/``resolve_vector_engine`` (:mod:`repro.local_model.store`)
walk a ladder of rungs — shm, parallel, array, indexed, dict — and until
now the answer to "why did auto pick ``parallel`` and not ``shm``" lived
only in their control flow.  They now thread a :class:`DecisionRecorder`
through the walk, noting every rung considered and the predicate that
accepted or rejected it, and finish with an :class:`EngineDecision` that

* is queryable afterwards via :func:`last_decision` (and the short
  :func:`recent_decisions` ring),
* is emitted as a ``resolve_engine`` instant on the active tracer, and
* bumps the ``engine_decisions_total{resolved=...}`` counter.

A rung that was never *reached* (the walk returns at the first accepted
rung) simply does not appear; a rung that was considered and rejected
carries its rejection reason verbatim.  The recorder never evaluates
predicates itself — in particular ``parallel_workers()`` stays exactly
as lazy as the resolution walk makes it, because eagerly evaluating it
for the record would surface ``REPRO_WORKERS`` errors on paths that
never used to read it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.observability import metrics
from repro.observability import trace


@dataclass(frozen=True)
class DecisionRung:
    """One ladder rung considered during resolution."""

    tier: str
    accepted: bool
    reason: str

    def to_json(self) -> Dict[str, Any]:
        return {"tier": self.tier, "accepted": self.accepted, "reason": self.reason}


@dataclass(frozen=True)
class EngineDecision:
    """The structured outcome of one ``resolve_engine`` call."""

    requested: str
    resolved: str
    allowed: Tuple[str, ...]
    rungs: Tuple[DecisionRung, ...]
    node_count: Optional[int] = None
    workers: Optional[int] = None
    vector: bool = False

    def why(self, tier: str) -> Optional[str]:
        """The recorded reason for ``tier``, or ``None`` if never reached."""
        for rung in self.rungs:
            if rung.tier == tier:
                return rung.reason
        return None

    def explain(self) -> str:
        """A human-readable account of the whole walk."""
        kind = "resolve_vector_engine" if self.vector else "resolve_engine"
        header = f"{kind}({self.requested!r}) -> {self.resolved!r}"
        details = [f"allowed={list(self.allowed)}"]
        if self.node_count is not None:
            details.append(f"node_count={self.node_count}")
        if self.workers is not None:
            details.append(f"workers={self.workers}")
        lines = [header + "  [" + ", ".join(details) + "]"]
        for rung in self.rungs:
            verdict = "accepted" if rung.accepted else "rejected"
            lines.append(f"  {rung.tier}: {verdict} — {rung.reason}")
        return "\n".join(lines)

    def to_json(self) -> Dict[str, Any]:
        return {
            "requested": self.requested,
            "resolved": self.resolved,
            "allowed": list(self.allowed),
            "rungs": [rung.to_json() for rung in self.rungs],
            "node_count": self.node_count,
            "workers": self.workers,
            "vector": self.vector,
        }


class DecisionRecorder:
    """Accumulates rungs during one resolution walk, then publishes."""

    def __init__(
        self,
        requested: str,
        allowed: Sequence[str],
        node_count: Optional[int] = None,
        vector: bool = False,
    ) -> None:
        self.requested = requested
        self.allowed = tuple(allowed)
        self.node_count = node_count
        self.vector = vector
        self._rungs: List[DecisionRung] = []

    def rung(self, tier: str, accepted: bool, reason: str) -> None:
        self._rungs.append(DecisionRung(tier, accepted, reason))

    def finish(self, resolved: str, workers: Optional[int] = None) -> EngineDecision:
        decision = EngineDecision(
            requested=self.requested,
            resolved=resolved,
            allowed=self.allowed,
            rungs=tuple(self._rungs),
            node_count=self.node_count,
            workers=workers,
            vector=self.vector,
        )
        _publish(decision)
        return decision


#: How many decisions the ring buffer keeps for trace exports.
HISTORY_LIMIT = 64

_HISTORY: List[EngineDecision] = []


def _publish(decision: EngineDecision) -> None:
    _HISTORY.append(decision)
    if len(_HISTORY) > HISTORY_LIMIT:
        del _HISTORY[: len(_HISTORY) - HISTORY_LIMIT]
    metrics.registry().inc("engine_decisions_total", resolved=decision.resolved)
    tracer = trace.ACTIVE
    if tracer is not None:
        tracer.instant(trace.SPAN_RESOLVE_ENGINE, **decision.to_json())


def last_decision() -> Optional[EngineDecision]:
    """The most recent resolution, or ``None`` if none happened yet."""
    return _HISTORY[-1] if _HISTORY else None


def recent_decisions() -> Tuple[EngineDecision, ...]:
    """The ring buffer, oldest first (at most :data:`HISTORY_LIMIT`)."""
    return tuple(_HISTORY)


def clear_decisions() -> None:
    """Drop the history (test isolation)."""
    _HISTORY.clear()
