"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError` so that callers
can catch everything raised by this package with a single ``except`` clause
while still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class InvalidGridError(ReproError):
    """Raised when a grid is constructed with invalid parameters.

    Examples include non-positive side lengths, a dimension of zero, or a
    side length that is too small for the toroidal wrap-around to produce a
    simple graph (``n >= 3`` is required so that a node has four distinct
    neighbours in two dimensions).
    """


class InvalidLabellingError(ReproError):
    """Raised when a candidate labelling does not cover the node/edge set."""


class InvalidProblemError(ReproError):
    """Raised when an LCL problem specification is malformed."""


class SimulationError(ReproError):
    """Raised when a LOCAL-model simulation violates its own contract.

    A typical example is an algorithm that reads information outside of the
    radius it declared, or a node program that never terminates within the
    round budget given to the simulator.
    """


class LocalityViolationError(SimulationError):
    """Raised when an algorithm accesses data beyond its declared radius."""


class SynthesisError(ReproError):
    """Raised when algorithm synthesis fails in an unexpected way.

    Note that *unsatisfiability* of a synthesis instance is not an error: it
    is reported through the return value (the paper shows that for global
    problems the synthesis loop never succeeds).  This exception is reserved
    for malformed inputs and internal inconsistencies.
    """


class UnsolvableInstanceError(ReproError):
    """Raised when a problem instance provably has no feasible solution.

    For example, 2-colouring a toroidal grid with odd side length, or
    edge ``2d``-colouring a ``d``-dimensional grid with odd side length
    (Theorem 21 of the paper).
    """


class ClassificationError(ReproError):
    """Raised when a classification routine is asked an undecidable question.

    The paper proves (Theorem 3) that distinguishing ``Θ(log* n)`` from
    ``Θ(n)`` on two-dimensional grids is undecidable; routines that would
    need such an oracle raise this error instead of silently looping.
    """
