"""The corner coordination problem (Appendix A.3) — a ``Θ(√n)`` LCL.

On general bounded-degree graphs the paper engineers an LCL problem whose
complexity is exactly ``Θ(√n)``: on instances that look like bounded
(non-toroidal) grids, the four degree-2 corner nodes must coordinate through
systems of directed pseudotrees; on any other instance the output is
unconstrained.  The upper bound rests on a simple geometric fact
(Proposition 28): a corner that has not yet seen another corner or a broken
node after ``r`` rounds has seen ``(r+2 choose 2)`` nodes, so after
``2√n`` rounds it must have seen one.

This module provides the instance/terminology helpers, a reference solution
on plain rectangular grids (two boundary paths connecting the corners), a
verifier for the structural rules the paper states, and the round-counting
functions used by benchmark E8.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import InvalidLabellingError
from repro.grid.torus import RectangularGrid

Node = Tuple[int, int]
DirectedEdge = Tuple[Node, Node]


@dataclass
class CornerCoordinationInstance:
    """An instance of the corner coordination problem.

    ``broken_nodes`` marks nodes whose neighbourhood is not grid-like (the
    lower-bound proof creates them by rotating a ball around a boundary
    node); on plain rectangles the set is empty.
    """

    grid: RectangularGrid
    broken_nodes: Set[Node] = field(default_factory=set)

    def corner_nodes(self) -> List[Node]:
        """The degree-2 nodes that are not broken."""
        return [node for node in self.grid.corners() if node not in self.broken_nodes]

    def special_nodes(self) -> Set[Node]:
        """Corners and broken nodes — what a corner needs to see to decide."""
        return set(self.corner_nodes()) | set(self.broken_nodes)


def corner_ball_size(radius: int) -> int:
    """Proposition 28: the radius-``r`` ball of an unobstructed corner has
    ``(r+2 choose 2)`` nodes."""
    return (radius + 2) * (radius + 1) // 2


def rounds_until_corner_sees_special(instance: CornerCoordinationInstance, corner: Node) -> int:
    """Rounds until ``corner`` sees another corner or a broken node.

    This is the distance from the corner to the nearest other special node;
    on an ``m × m`` rectangle it equals ``m - 1 = Θ(√n)``, which is the
    quantity benchmark E8 sweeps.
    """
    specials = instance.special_nodes() - {corner}
    if not specials:
        raise InvalidLabellingError("the instance has no other special node to see")
    return min(instance.grid.l1_distance(corner, special) for special in specials)


def upper_bound_rounds(node_count: int) -> int:
    """The Appendix A.3 upper bound: ``2√n`` rounds always suffice."""
    return math.ceil(2 * math.sqrt(node_count))


def solve_corner_coordination(instance: CornerCoordinationInstance) -> Dict[DirectedEdge, bool]:
    """A reference feasible output on a plain rectangle.

    Two directed pseudotrees are produced: the bottom row path from the
    south-west corner to the south-east corner, and the top row path from
    the north-west corner to the north-east corner.  Every corner is the
    root or leaf of one pseudotree, paths cross every column exactly once
    and never meet outside corners.
    """
    if instance.broken_nodes:
        # Any output is feasible when the instance is not a clean grid.
        return {}
    grid = instance.grid
    directed: Dict[DirectedEdge, bool] = {}
    for x in range(grid.width - 1):
        directed[((x, 0), (x + 1, 0))] = True
        directed[((x, grid.height - 1), (x + 1, grid.height - 1))] = True
    return directed


def verify_corner_coordination(
    instance: CornerCoordinationInstance,
    directed_edges: Dict[DirectedEdge, bool],
) -> List[str]:
    """Check the structural rules of the corner coordination problem.

    Returns a list of violated rules (empty = feasible).  The rules checked
    are the ones the paper states: the directed edges form pseudotrees with
    out-degree at most one per node, only corners may be roots or leaves,
    every corner is the root or leaf of at least one pseudotree, and a
    directed path never uses the same row or column twice (the "consistent
    orientation" requirement).
    """
    if instance.broken_nodes or not instance.corner_nodes():
        return []
    grid = instance.grid
    problems: List[str] = []

    selected = [edge for edge, chosen in directed_edges.items() if chosen]
    for tail, head in selected:
        if not (grid.contains(tail) and grid.contains(head)):
            problems.append(f"edge {tail}->{head} leaves the grid")
        elif grid.l1_distance(tail, head) != 1:
            problems.append(f"edge {tail}->{head} is not a grid edge")

    out_degree: Dict[Node, int] = {}
    in_degree: Dict[Node, int] = {}
    for tail, head in selected:
        out_degree[tail] = out_degree.get(tail, 0) + 1
        in_degree[head] = in_degree.get(head, 0) + 1
    for node, degree in out_degree.items():
        if degree > 1:
            problems.append(f"node {node} has out-degree {degree} > 1")

    corners = set(instance.corner_nodes())
    involved = set(out_degree) | set(in_degree)
    for node in involved:
        if node in corners:
            continue
        if out_degree.get(node, 0) == 0 or in_degree.get(node, 0) == 0:
            problems.append(f"non-corner node {node} is a root or leaf of a pseudotree")

    for corner in corners:
        if out_degree.get(corner, 0) == 0 and in_degree.get(corner, 0) == 0:
            problems.append(f"corner {corner} is not part of any pseudotree")

    # Consistent orientation: follow each maximal path and check that it
    # never revisits a row or a column.
    successor: Dict[Node, Node] = {tail: head for tail, head in selected}
    roots = [node for node in involved if in_degree.get(node, 0) == 0]
    for root in roots:
        seen_rows: Set[int] = set()
        seen_columns: Set[int] = set()
        current: Optional[Node] = root
        previous: Optional[Node] = None
        steps = 0
        while current is not None and steps <= len(selected) + 1:
            if previous is not None:
                if previous[0] != current[0] and current[0] in seen_columns:
                    problems.append(f"path from {root} crosses column {current[0]} twice")
                    break
                if previous[1] != current[1] and current[1] in seen_rows:
                    problems.append(f"path from {root} crosses row {current[1]} twice")
                    break
            seen_rows.add(current[1])
            seen_columns.add(current[0])
            previous = current
            current = successor.get(current)
            steps += 1
    return problems
