"""The Section 9 reduction machinery: from 3-colourings to q-sum coordination.

Theorem 9 (3-colouring two-dimensional grids needs ``Ω(n)`` rounds) is proved
by extracting, from any candidate fast 3-colouring algorithm, an invariant
``s(G)`` that behaves like a q-sum coordination target.  The objects the
proof manipulates are all concrete and computable, and this module builds
them for any given 3-colouring:

* the *greedy normalisation* (a node of colour 2 has a colour-1 neighbour,
  a node of colour 3 has neighbours of colours 1 and 2),
* the auxiliary directed graph ``H`` on colour-3 nodes: two colour-3 nodes
  sharing a colour-1 and a colour-2 common neighbour are joined, oriented so
  the colour-1 neighbour lies to the left of the edge,
* the decomposition of ``E(H)`` into edge-disjoint directed cycles (every
  node of ``H`` has in-degree equal to its out-degree),
* the row invariants ``i_r(C)`` (northbound minus southbound intersections
  of a cycle with a row) and their sum ``s(G)``.

Lemma 12 (``i_r`` does not depend on the row), Lemma 14 (``s`` is odd for
odd ``n`` and ``|s| ≤ n/2``) and the analogous facts for orientations are
validated computationally by the tests and by benchmark E9.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.errors import InvalidLabellingError
from repro.grid.torus import Node, ToroidalGrid

Colouring = Dict[Node, int]


def greedy_normalise_colouring(grid: ToroidalGrid, colouring: Mapping[Node, int]) -> Colouring:
    """Turn a proper {1,2,3}-colouring into a *greedy* one.

    Repeatedly recolour nodes to the smallest colour not used by any
    neighbour; at the fixed point every node of colour ``c`` has neighbours
    of every colour below ``c``, which is the normalisation the Section 9
    proof assumes (it costs the original algorithm only a constant number of
    extra rounds).
    """
    current: Colouring = dict(colouring)
    for node in grid.nodes():
        if current[node] not in (1, 2, 3):
            raise InvalidLabellingError("greedy normalisation expects colours in {1, 2, 3}")
    changed = True
    while changed:
        changed = False
        for node in grid.nodes():
            neighbour_colours = {current[n] for n in grid.neighbour_nodes(node)}
            smallest = next(c for c in (1, 2, 3) if c not in neighbour_colours)
            if smallest < current[node]:
                current[node] = smallest
                changed = True
    return current


@dataclass
class AuxiliaryGraph:
    """The directed graph ``H`` on colour-3 nodes of a greedy 3-colouring."""

    grid: ToroidalGrid
    edges: Set[Tuple[Node, Node]] = field(default_factory=set)

    def out_neighbours(self, node: Node) -> List[Node]:
        return [head for tail, head in self.edges if tail == node]

    def in_degree(self, node: Node) -> int:
        return sum(1 for _tail, head in self.edges if head == node)

    def out_degree(self, node: Node) -> int:
        return sum(1 for tail, _head in self.edges if tail == node)

    def nodes(self) -> Set[Node]:
        result: Set[Node] = set()
        for tail, head in self.edges:
            result.add(tail)
            result.add(head)
        return result

    def degree_profile_valid(self) -> bool:
        """Check the paper's claim: in-degree = out-degree ∈ {1, 2} at every node."""
        for node in self.nodes():
            in_degree = self.in_degree(node)
            out_degree = self.out_degree(node)
            if in_degree != out_degree or in_degree not in (1, 2):
                return False
        return True


def _cross(direction: Tuple[int, int], offset: Tuple[int, int]) -> int:
    return direction[0] * offset[1] - direction[1] * offset[0]


def build_auxiliary_graph(grid: ToroidalGrid, colouring: Mapping[Node, int]) -> AuxiliaryGraph:
    """Build the auxiliary graph ``H`` from a greedy 3-colouring.

    Two colour-3 nodes at diagonal distance (sharing exactly two common
    neighbours) are joined when one common neighbour has colour 1 and the
    other colour 2; the edge is directed so that the colour-1 neighbour lies
    to the left of the direction of travel.
    """
    if grid.dimension != 2:
        raise InvalidLabellingError("the reduction machinery is defined on two-dimensional grids")
    edges: Set[Tuple[Node, Node]] = set()
    for node in grid.nodes():
        if colouring[node] != 3:
            continue
        for diagonal in ((1, 1), (1, -1)):
            other = grid.shift(node, diagonal)
            if colouring[other] != 3:
                continue
            common_a = grid.shift(node, (diagonal[0], 0))
            common_b = grid.shift(node, (0, diagonal[1]))
            colours = {colouring[common_a], colouring[common_b]}
            if colours != {1, 2}:
                continue
            # Direct the edge so the colour-1 common neighbour is on the left.
            forward = diagonal
            left_of_forward = (
                common_a
                if _cross(forward, (diagonal[0], 0)) > 0
                else common_b
            )
            if colouring[left_of_forward] == 1:
                edges.add((node, other))
            else:
                edges.add((other, node))
    return AuxiliaryGraph(grid=grid, edges=edges)


def cycle_decomposition(graph: AuxiliaryGraph) -> List[List[Node]]:
    """Partition ``E(H)`` into edge-disjoint directed cycles.

    Every node has equal in- and out-degree, so the standard edge-walking
    (Hierholzer-style) decomposition applies; each returned cycle is a list
    of nodes ``v_0, v_1, ..., v_{k-1}`` with edges ``v_i → v_{i+1 mod k}``.
    """
    remaining: Dict[Node, List[Node]] = {}
    for tail, head in sorted(graph.edges):
        remaining.setdefault(tail, []).append(head)
    cycles: List[List[Node]] = []
    for start in sorted(remaining):
        while remaining.get(start):
            cycle = [start]
            current = remaining[start].pop()
            while current != start:
                cycle.append(current)
                current = remaining[current].pop()
            cycles.append(cycle)
    return cycles


def row_invariant(grid: ToroidalGrid, cycle: List[Node], row: int) -> int:
    """Compute ``i_r(C)``: northbound minus southbound intersections on a row.

    A node ``v`` of the cycle lying on the given row is a northbound
    intersection when its cycle predecessor lies on the row south of it and
    its successor on the row north of it; southbound is the reverse.
    """
    n = grid.sides[1]
    total = 0
    length = len(cycle)
    for index, node in enumerate(cycle):
        if node[1] != row:
            continue
        predecessor = cycle[(index - 1) % length]
        successor = cycle[(index + 1) % length]
        south = (node[1] - 1) % n
        north = (node[1] + 1) % n
        if predecessor[1] == south and successor[1] == north:
            total += 1
        elif predecessor[1] == north and successor[1] == south:
            total -= 1
    return total


def wrap_invariant(grid: ToroidalGrid, colouring: Mapping[Node, int], row: Optional[int] = None) -> int:
    """Compute ``s(G)``: the sum of ``i_r(C)`` over the cycle decomposition.

    The value is independent of the chosen row (Lemma 12); passing an
    explicit ``row`` allows the tests to verify exactly that.
    """
    greedy = greedy_normalise_colouring(grid, colouring)
    graph = build_auxiliary_graph(grid, greedy)
    cycles = cycle_decomposition(graph)
    chosen_row = 0 if row is None else row
    return sum(row_invariant(grid, cycle, chosen_row) for cycle in cycles)
