"""The q-sum coordination problem on directed cycles (Theorem 10).

Given a function ``q : N → Z``, every node of a directed ``n``-cycle must
output a label in ``{-1, 0, +1}`` so that the labels sum to exactly
``q(n)``.  Theorem 10 shows the problem needs ``Ω(n)`` rounds whenever
``q(n)`` is odd for odd ``n`` and ``|q(n)| ≤ n/2`` — conditions satisfied by
the invariant ``s(n)`` extracted from any fast 3-colouring algorithm
(Section 9) and from any fast ``{0,3,4}``-orientation algorithm
(Theorem 25), which is how both lower bounds are obtained.

The proof itself is a compactness/averaging argument over identifier
fragments and is not executable; what the library provides is the problem
object (verification, the Theorem 10 admissibility conditions, and the
trivial global solver), which the benchmarks combine with the Section 9
reduction machinery to validate the invariants the proof relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

from repro.errors import UnsolvableInstanceError


def standard_q_function(n: int) -> int:
    """The simplest admissible ``q``: 1 for odd ``n``, 0 for even ``n``."""
    return 1 if n % 2 == 1 else 0


@dataclass(frozen=True)
class QSumProblem:
    """A q-sum coordination problem, parameterised by the target function."""

    q: Callable[[int], int]
    name: str = "q-sum-coordination"

    def target(self, n: int) -> int:
        """The required sum of outputs on an ``n``-cycle."""
        return self.q(n)

    def satisfies_theorem_10(self, n_values: Sequence[int]) -> bool:
        """Check the Theorem 10 admissibility conditions on the given sizes.

        The theorem requires ``q(n)`` odd for odd ``n`` and ``|q(n)| ≤ n/2``;
        if both hold (for all checked sizes), the problem requires ``Ω(n)``
        rounds on directed cycles.
        """
        for n in n_values:
            value = self.q(n)
            if n % 2 == 1 and value % 2 == 0:
                return False
            if abs(value) > n / 2:
                return False
        return True

    def verify(self, outputs: Sequence[int]) -> bool:
        """Check that the outputs are in {-1, 0, +1} and sum to ``q(n)``."""
        n = len(outputs)
        if any(value not in (-1, 0, 1) for value in outputs):
            return False
        return sum(outputs) == self.q(n)

    def solve_globally(self, n: int) -> List[int]:
        """The Θ(n) algorithm: gather everything, then meet the target exactly.

        The node with the smallest position index absorbs the remainder; all
        outputs stay within {-1, 0, +1} as long as ``|q(n)| ≤ n``.
        """
        target = self.q(n)
        if abs(target) > n:
            raise UnsolvableInstanceError(
                f"target {target} cannot be reached with {n} outputs in {{-1,0,1}}"
            )
        outputs = [0] * n
        sign = 1 if target >= 0 else -1
        for index in range(abs(target)):
            outputs[index] = sign
        return outputs
