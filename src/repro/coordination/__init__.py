"""Coordination problems used in the paper's lower bounds.

* :mod:`repro.coordination.qsum` — the q-sum coordination problem on
  directed cycles (Theorem 10), the engine behind the 3-colouring and
  {0,3,4}-orientation lower bounds.
* :mod:`repro.coordination.three_colouring_reduction` — the Section 9
  reduction machinery: the greedy normalisation of a 3-colouring, the
  auxiliary directed graph on colour-3 nodes, its cycle decomposition and
  the row invariants ``i_r(C)`` and ``s(G)``.
* :mod:`repro.coordination.corner` — the corner coordination problem of
  Appendix A.3, an engineered LCL with complexity ``Θ(√n)`` on general
  bounded-degree graphs.
"""

from repro.coordination.qsum import QSumProblem, standard_q_function
from repro.coordination.three_colouring_reduction import (
    AuxiliaryGraph,
    build_auxiliary_graph,
    cycle_decomposition,
    greedy_normalise_colouring,
    row_invariant,
    wrap_invariant,
)
from repro.coordination.corner import (
    CornerCoordinationInstance,
    corner_ball_size,
    rounds_until_corner_sees_special,
    solve_corner_coordination,
    verify_corner_coordination,
)

__all__ = [
    "AuxiliaryGraph",
    "CornerCoordinationInstance",
    "QSumProblem",
    "build_auxiliary_graph",
    "corner_ball_size",
    "cycle_decomposition",
    "greedy_normalise_colouring",
    "rounds_until_corner_sees_special",
    "row_invariant",
    "solve_corner_coordination",
    "standard_q_function",
    "verify_corner_coordination",
    "wrap_invariant",
]
