"""A catalogue of the concrete LCL problems studied in the paper.

Each factory returns a fully specified problem object (a
:class:`repro.core.lcl.GridLCL` for node labellings or an
:class:`repro.core.lcl.EdgeGridLCL` for edge labellings) that can be fed to
the verifier, the synthesis engine, or the classification experiments.

Edge-orientation problems have their own builders in
:mod:`repro.orientation.problems` because they come with the extra
classification machinery of Section 11.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.lcl import EdgeGridLCL, GridLCL, PairRelation
from repro.errors import InvalidProblemError


def vertex_colouring_problem(number_of_colours: int) -> GridLCL:
    """Proper vertex colouring with ``number_of_colours`` colours.

    The paper shows (Sections 8 and 9) that on two-dimensional grids this is
    ``Θ(log* n)`` for ``k >= 4`` and global for ``k <= 3``.
    """
    if number_of_colours < 1:
        raise InvalidProblemError("a colouring needs at least one colour")
    alphabet: Tuple[int, ...] = tuple(range(number_of_colours))
    different = PairRelation.from_predicate(alphabet, lambda a, b: a != b)
    return GridLCL(
        name=f"vertex-{number_of_colours}-colouring",
        alphabet=alphabet,
        horizontal=different,
        vertical=different,
    )


def independent_set_problem() -> GridLCL:
    """Independent set (no maximality requirement).

    The all-zero labelling is feasible, so this is a trivial ``O(1)``
    problem — it appears in Figure 2 as the canonical constant-time example.
    """
    alphabet = (0, 1)
    not_both_selected = PairRelation.from_predicate(alphabet, lambda a, b: not (a == 1 and b == 1))
    return GridLCL(
        name="independent-set",
        alphabet=alphabet,
        horizontal=not_both_selected,
        vertical=not_both_selected,
    )


def maximal_independent_set_problem() -> GridLCL:
    """Maximal independent set.

    Independence is a pairwise constraint, but maximality ("a node outside
    the set has a neighbour inside") needs the full cross predicate, so this
    problem is not directly synthesisable by the pairwise tile CSP; it is
    used by the verifier and by the Figure 2 cycle experiments.
    """
    alphabet = (0, 1)
    not_both_selected = PairRelation.from_predicate(alphabet, lambda a, b: not (a == 1 and b == 1))

    def maximality(centre: int, north: int, east: int, south: int, west: int) -> bool:
        if centre == 1:
            return north == 0 and east == 0 and south == 0 and west == 0
        return north == 1 or east == 1 or south == 1 or west == 1

    return GridLCL(
        name="maximal-independent-set",
        alphabet=alphabet,
        horizontal=not_both_selected,
        vertical=not_both_selected,
        cross_predicate=maximality,
    )


def diagonal_colouring_problem(number_of_colours: int) -> GridLCL:
    """Colouring in which only horizontally adjacent nodes must differ.

    A simple auxiliary problem used in tests: it is trivially ``Θ(log* n)``
    for two or more colours (each row is an independent cycle instance) and
    exercises problems whose horizontal and vertical relations differ.
    """
    if number_of_colours < 2:
        raise InvalidProblemError("need at least two colours")
    alphabet: Tuple[int, ...] = tuple(range(number_of_colours))
    different = PairRelation.from_predicate(alphabet, lambda a, b: a != b)
    anything = PairRelation.from_predicate(alphabet, lambda a, b: True)
    return GridLCL(
        name=f"row-{number_of_colours}-colouring",
        alphabet=alphabet,
        horizontal=different,
        vertical=anything,
    )


def proper_edge_colouring_problem(number_of_colours: int) -> EdgeGridLCL:
    """Proper edge colouring: edges sharing an endpoint get different colours.

    Section 10 shows this is ``Θ(log* n)`` with ``2d + 1`` colours on
    ``d``-dimensional grids and impossible with ``2d`` colours when ``n`` is
    odd (hence global).
    """
    if number_of_colours < 1:
        raise InvalidProblemError("an edge colouring needs at least one colour")
    alphabet: Tuple[int, ...] = tuple(range(number_of_colours))

    def all_incident_distinct(incident) -> bool:
        labels = [label for _axis, _sign, label in incident]
        return len(labels) == len(set(labels))

    return EdgeGridLCL(
        name=f"edge-{number_of_colours}-colouring",
        alphabet=alphabet,
        incident_predicate=all_incident_distinct,
    )


def edge_orientation_alphabet() -> Tuple[Tuple[int, int, int, int], ...]:
    """The node-labelling alphabet used to encode edge orientations.

    Each node outputs a 4-tuple ``(north, east, south, west)`` with entries
    in ``{0, 1}``; entry 1 means "this incident edge points *towards* me"
    (i.e. contributes to my in-degree).  Consistency between the two
    endpoints of an edge is enforced by the pair relations of the problems
    built in :mod:`repro.orientation.problems`.
    """
    labels = []
    for north in (0, 1):
        for east in (0, 1):
            for south in (0, 1):
                for west in (0, 1):
                    labels.append((north, east, south, west))
    return tuple(labels)
