"""Complexity classes of LCL problems on grids.

Theorem 2 of the paper (together with the Naor–Stockmeyer gap below
``Θ(log* n)``) shows that on toroidal grids only three deterministic
complexity classes exist: ``O(1)``, ``Θ(log* n)`` and ``Θ(n)``.  This module
provides the enumeration of those classes and a small result record used by
the classifiers (exact on cycles, evidence-based on grids) and by the
experiment reports.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Optional


class ComplexityClass(enum.Enum):
    """The deterministic complexity classes of LCL problems on toroidal grids."""

    #: Solvable in a constant number of rounds ("trivial" problems: some
    #: constant labelling is feasible).
    CONSTANT = "O(1)"

    #: Solvable in Θ(log* n) rounds ("local" problems).
    LOG_STAR = "Θ(log* n)"

    #: Requires Θ(n) rounds ("global" problems); includes problems that are
    #: unsolvable for infinitely many n.
    GLOBAL = "Θ(n)"

    #: Used by evidence-based classifiers when neither a local algorithm was
    #: found nor globality could be certified within the search budget.
    UNKNOWN = "unknown"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    @property
    def is_local(self) -> bool:
        """True for the sublinear classes ``O(1)`` and ``Θ(log* n)``."""
        return self in (ComplexityClass.CONSTANT, ComplexityClass.LOG_STAR)


@dataclass
class ClassificationResult:
    """Outcome of classifying a single LCL problem.

    Attributes
    ----------
    problem_name:
        Name of the classified problem.
    complexity:
        The complexity class assigned.
    exact:
        True when the classification is provably correct (cycles, or grid
        problems covered by one of the paper's theorems); False when it is
        evidence-based (e.g. "synthesis failed up to k = 5, conjectured
        global" — recall that the classification question is undecidable on
        grids, Theorem 3).
    evidence:
        Free-form diagnostic details: the flexible state found, the
        synthesis parameters that succeeded, the infeasibility witness, ...
    """

    problem_name: str
    complexity: ComplexityClass
    exact: bool = True
    evidence: Dict[str, Any] = field(default_factory=dict)

    def describe(self) -> str:
        """One-line human-readable summary used by the experiment reports."""
        certainty = "exact" if self.exact else "conjectured"
        return f"{self.problem_name}: {self.complexity.value} ({certainty})"


def merge_classifications(
    first: ClassificationResult, second: Optional[ClassificationResult]
) -> ClassificationResult:
    """Combine two classification results for the same problem.

    Exact results win over conjectures; among equally certain results the
    faster (smaller) class wins, since an upper bound in a smaller class
    subsumes membership claims in larger ones.
    """
    if second is None:
        return first
    if first.problem_name != second.problem_name:
        raise ValueError("cannot merge classifications of different problems")
    order = {
        ComplexityClass.CONSTANT: 0,
        ComplexityClass.LOG_STAR: 1,
        ComplexityClass.GLOBAL: 2,
        ComplexityClass.UNKNOWN: 3,
    }
    if first.exact != second.exact:
        return first if first.exact else second
    return first if order[first.complexity] <= order[second.complexity] else second
