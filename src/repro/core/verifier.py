"""Local-checkability verification of candidate labellings.

The defining feature of an LCL problem is that feasibility can be verified
by inspecting constant-radius neighbourhoods.  The functions here do exactly
that: they walk over every node (or edge) of a grid, evaluate the local
constraints of a problem specification, and report *all* violations found
(not just the first), because the violation lists are also used by the
failure-injection tests and by the synthesis validator.

Besides the generic :class:`repro.core.lcl.GridLCL` /
:class:`repro.core.lcl.EdgeGridLCL` verifiers, a few standalone checks for
classic problems (proper vertex colouring, proper edge colouring, maximal
independent sets) are provided; these work on grids of any dimension and are
used to validate the Section 8 and Section 10 algorithms for ``d >= 2``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.lcl import EdgeGridLCL, GridLCL
from repro.errors import InvalidLabellingError
from repro.grid.torus import Direction, EdgeKey, Node, ToroidalGrid


@dataclass(frozen=True)
class Violation:
    """A single violated local constraint."""

    kind: str
    location: Tuple[Any, ...]
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.kind}] at {self.location}: {self.detail}"


@dataclass
class VerificationResult:
    """Outcome of verifying a labelling: validity flag plus all violations."""

    valid: bool
    violations: List[Violation] = field(default_factory=list)

    @classmethod
    def from_violations(cls, violations: Sequence[Violation]) -> "VerificationResult":
        """Build a result from a (possibly empty) list of violations."""
        violations = list(violations)
        return cls(valid=not violations, violations=violations)

    def __bool__(self) -> bool:
        return self.valid


def _require_complete_node_labelling(grid: ToroidalGrid, labels: Mapping[Node, Any]) -> None:
    missing = [node for node in grid.nodes() if node not in labels]
    if missing:
        raise InvalidLabellingError(
            f"labelling misses {len(missing)} nodes (first missing: {missing[0]})"
        )


def _require_complete_edge_labelling(grid: ToroidalGrid, labels: Mapping[EdgeKey, Any]) -> None:
    missing = [edge for edge in grid.edges() if edge not in labels]
    if missing:
        raise InvalidLabellingError(
            f"labelling misses {len(missing)} edges (first missing: {missing[0]})"
        )


# --------------------------------------------------------------------- #
# GridLCL verification (two-dimensional oriented grids)
# --------------------------------------------------------------------- #

def verify_node_labelling(
    grid: ToroidalGrid,
    problem: GridLCL,
    labels: Mapping[Node, Any],
    max_violations: Optional[int] = None,
) -> VerificationResult:
    """Verify a node labelling against a :class:`GridLCL` specification."""
    if grid.dimension != 2:
        raise InvalidLabellingError("GridLCL problems are defined on two-dimensional grids")
    _require_complete_node_labelling(grid, labels)

    violations: List[Violation] = []
    alphabet = set(problem.alphabet)

    def record(kind: str, location: Tuple[Any, ...], detail: str) -> bool:
        violations.append(Violation(kind, location, detail))
        return max_violations is not None and len(violations) >= max_violations

    for node in grid.nodes():
        label = labels[node]
        if label not in alphabet:
            if record("alphabet", (node,), f"label {label!r} not in the output alphabet"):
                return VerificationResult.from_violations(violations)
            continue
        if not problem.node_ok(label):
            if record("node", (node,), f"label {label!r} violates the node predicate"):
                return VerificationResult.from_violations(violations)

        east = grid.step(node, Direction(0, 1))
        north = grid.step(node, Direction(1, 1))
        if not problem.horizontal_ok(label, labels[east]):
            if record(
                "horizontal",
                (node, east),
                f"pair ({label!r}, {labels[east]!r}) not allowed west→east",
            ):
                return VerificationResult.from_violations(violations)
        if not problem.vertical_ok(label, labels[north]):
            if record(
                "vertical",
                (node, north),
                f"pair ({label!r}, {labels[north]!r}) not allowed south→north",
            ):
                return VerificationResult.from_violations(violations)

        if problem.cross_predicate is not None:
            south = grid.step(node, Direction(1, -1))
            west = grid.step(node, Direction(0, -1))
            if not problem.cross_ok(
                label, labels[north], labels[east], labels[south], labels[west]
            ):
                if record(
                    "cross",
                    (node,),
                    "neighbourhood constraint violated "
                    f"(centre={label!r}, N={labels[north]!r}, E={labels[east]!r}, "
                    f"S={labels[south]!r}, W={labels[west]!r})",
                ):
                    return VerificationResult.from_violations(violations)

    return VerificationResult.from_violations(violations)


def verify_edge_labelling(
    grid: ToroidalGrid,
    problem: EdgeGridLCL,
    labels: Mapping[EdgeKey, Any],
    max_violations: Optional[int] = None,
) -> VerificationResult:
    """Verify an edge labelling against an :class:`EdgeGridLCL` specification."""
    _require_complete_edge_labelling(grid, labels)
    violations: List[Violation] = []
    alphabet = set(problem.alphabet)

    for edge in grid.edges():
        if labels[edge] not in alphabet:
            violations.append(
                Violation("alphabet", (edge,), f"label {labels[edge]!r} not in the output alphabet")
            )
            if max_violations is not None and len(violations) >= max_violations:
                return VerificationResult.from_violations(violations)

    for node in grid.nodes():
        incident = []
        for axis in range(grid.dimension):
            outgoing = (node, axis)
            incoming = (grid.step(node, Direction(axis, -1)), axis)
            incident.append((axis, 1, labels[outgoing]))
            incident.append((axis, -1, labels[incoming]))
        if not problem.node_ok(tuple(incident)):
            violations.append(
                Violation(
                    "incident",
                    (node,),
                    f"incident edge labels {tuple(label for _, _, label in incident)!r} "
                    "violate the node constraint",
                )
            )
            if max_violations is not None and len(violations) >= max_violations:
                return VerificationResult.from_violations(violations)

    return VerificationResult.from_violations(violations)


# --------------------------------------------------------------------- #
# Stand-alone checks for classic problems (any dimension)
# --------------------------------------------------------------------- #

def verify_proper_vertex_colouring(
    grid: ToroidalGrid,
    labels: Mapping[Node, Any],
    number_of_colours: Optional[int] = None,
) -> VerificationResult:
    """Check that adjacent nodes receive different labels.

    If ``number_of_colours`` is given, also check that at most that many
    distinct labels are used.
    """
    _require_complete_node_labelling(grid, labels)
    violations: List[Violation] = []
    for node in grid.nodes():
        for axis in range(grid.dimension):
            neighbour = grid.step(node, Direction(axis, 1))
            if labels[node] == labels[neighbour]:
                violations.append(
                    Violation(
                        "monochromatic-edge",
                        (node, neighbour),
                        f"both endpoints coloured {labels[node]!r}",
                    )
                )
    if number_of_colours is not None:
        used = set(labels[node] for node in grid.nodes())
        if len(used) > number_of_colours:
            violations.append(
                Violation(
                    "palette",
                    tuple(),
                    f"{len(used)} colours used but only {number_of_colours} allowed",
                )
            )
    return VerificationResult.from_violations(violations)


def verify_proper_edge_colouring(
    grid: ToroidalGrid,
    labels: Mapping[EdgeKey, Any],
    number_of_colours: Optional[int] = None,
) -> VerificationResult:
    """Check that edges sharing an endpoint receive different labels."""
    _require_complete_edge_labelling(grid, labels)
    violations: List[Violation] = []
    for node in grid.nodes():
        incident = grid.incident_edges(node)
        seen: Dict[Any, EdgeKey] = {}
        for edge in incident:
            label = labels[edge]
            if label in seen:
                violations.append(
                    Violation(
                        "conflicting-incident-edges",
                        (node, seen[label], edge),
                        f"two edges at {node} coloured {label!r}",
                    )
                )
            else:
                seen[label] = edge
    if number_of_colours is not None:
        used = set(labels[edge] for edge in grid.edges())
        if len(used) > number_of_colours:
            violations.append(
                Violation(
                    "palette",
                    tuple(),
                    f"{len(used)} colours used but only {number_of_colours} allowed",
                )
            )
    return VerificationResult.from_violations(violations)


def verify_maximal_independent_set(
    grid: ToroidalGrid,
    membership: Mapping[Node, Any],
    adjacency: Optional[Mapping[Node, Sequence[Node]]] = None,
) -> VerificationResult:
    """Check independence and maximality of a 0/1 node labelling.

    By default the underlying grid adjacency is used; passing an explicit
    ``adjacency`` mapping allows verifying an MIS of a *power graph*
    ``G^(k)`` / ``G^[k]`` — this is how the anchor sets of the normal form
    are validated.
    """
    _require_complete_node_labelling(grid, membership)
    violations: List[Violation] = []

    def neighbours_of(node: Node) -> Sequence[Node]:
        if adjacency is not None:
            return adjacency[node]
        return grid.neighbour_nodes(node)

    for node in grid.nodes():
        in_set = bool(membership[node])
        neighbour_in_set = False
        for neighbour in neighbours_of(node):
            if bool(membership[neighbour]):
                neighbour_in_set = True
                if in_set:
                    violations.append(
                        Violation(
                            "independence",
                            (node, neighbour),
                            "two adjacent nodes are both in the set",
                        )
                    )
        if not in_set and not neighbour_in_set:
            violations.append(
                Violation(
                    "maximality",
                    (node,),
                    "node is not in the set and has no neighbour in the set",
                )
            )
    return VerificationResult.from_violations(violations)
