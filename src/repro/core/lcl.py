"""LCL problem specifications on oriented two-dimensional grids.

The paper (Section 3) defines an LCL problem by a finite output alphabet and
a radius-``r`` local checkability condition; on bounded-degree graphs one may
always normalise to radius 1 at the cost of an additive constant in the
running time.  On a consistently oriented grid a radius-1 condition can be
expressed through three ingredients:

* a *node predicate* on the label of a single node,
* *pair relations* constraining the labels of horizontally and vertically
  adjacent nodes (the west/south node is always the first argument, matching
  the grid's orientation), and
* an optional *cross predicate* over a node and its four neighbours, for
  conditions such as the maximality of an independent set that are not
  expressible pairwise.

Problems whose output lives on edges (edge colourings, edge orientations as
edge labels) use :class:`EdgeGridLCL`, whose constraint is a predicate over
the labels of the (up to) four edges incident to a node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, FrozenSet, Iterable, Optional, Tuple

from repro.errors import InvalidProblemError

Label = Any


@dataclass(frozen=True)
class PairRelation:
    """A binary relation over output labels given as an explicit set of pairs.

    The relation lists the *allowed* pairs.  ``first`` is always the node
    with the smaller coordinate along the relevant axis (the western node
    for horizontal pairs, the southern node for vertical pairs).
    """

    allowed: FrozenSet[Tuple[Label, Label]]

    @classmethod
    def from_pairs(cls, pairs: Iterable[Tuple[Label, Label]]) -> "PairRelation":
        """Build a relation from an iterable of allowed pairs."""
        return cls(frozenset(pairs))

    @classmethod
    def from_predicate(
        cls, alphabet: Iterable[Label], predicate: Callable[[Label, Label], bool]
    ) -> "PairRelation":
        """Materialise a relation from a predicate over the full alphabet."""
        alphabet = tuple(alphabet)
        return cls(
            frozenset(
                (first, second)
                for first in alphabet
                for second in alphabet
                if predicate(first, second)
            )
        )

    def permits(self, first: Label, second: Label) -> bool:
        """Return True if the ordered pair ``(first, second)`` is allowed."""
        return (first, second) in self.allowed

    def __contains__(self, pair: Tuple[Label, Label]) -> bool:
        return pair in self.allowed


@dataclass(frozen=True)
class GridLCL:
    """A node-labelling LCL problem on oriented two-dimensional grids.

    Attributes
    ----------
    name:
        Human-readable problem name.
    alphabet:
        The finite set of output labels.
    node_predicate:
        Optional predicate a single node's label must satisfy.
    horizontal:
        Optional relation over (west label, east label) for horizontally
        adjacent nodes.
    vertical:
        Optional relation over (south label, north label) for vertically
        adjacent nodes.
    cross_predicate:
        Optional predicate over ``(centre, north, east, south, west)``
        labels; used for constraints (such as maximality) that cannot be
        expressed pairwise.  Synthesis only supports problems whose
        constraints are pairwise (``cross_predicate is None``); verification
        supports both.
    """

    name: str
    alphabet: Tuple[Label, ...]
    node_predicate: Optional[Callable[[Label], bool]] = None
    horizontal: Optional[PairRelation] = None
    vertical: Optional[PairRelation] = None
    cross_predicate: Optional[Callable[[Label, Label, Label, Label, Label], bool]] = None

    def __post_init__(self) -> None:
        if not self.alphabet:
            raise InvalidProblemError(f"problem {self.name!r} has an empty alphabet")
        if len(set(self.alphabet)) != len(self.alphabet):
            raise InvalidProblemError(f"problem {self.name!r} has duplicate labels")

    # ------------------------------------------------------------------ #
    # Constraint evaluation helpers
    # ------------------------------------------------------------------ #

    def node_ok(self, label: Label) -> bool:
        """Check the single-node constraint."""
        if self.node_predicate is None:
            return True
        return bool(self.node_predicate(label))

    def horizontal_ok(self, west: Label, east: Label) -> bool:
        """Check the constraint between a node and its eastern neighbour."""
        if self.horizontal is None:
            return True
        return self.horizontal.permits(west, east)

    def vertical_ok(self, south: Label, north: Label) -> bool:
        """Check the constraint between a node and its northern neighbour."""
        if self.vertical is None:
            return True
        return self.vertical.permits(south, north)

    def cross_ok(self, centre: Label, north: Label, east: Label, south: Label, west: Label) -> bool:
        """Check the full neighbourhood constraint, if any."""
        if self.cross_predicate is None:
            return True
        return bool(self.cross_predicate(centre, north, east, south, west))

    @property
    def is_pairwise(self) -> bool:
        """True if all constraints are expressible on single edges.

        The synthesis engine of Section 7 encodes constraints on the edges
        of the tile neighbourhood graph, so it requires pairwise problems.
        """
        return self.cross_predicate is None

    def feasible_constant_labels(self) -> Tuple[Label, ...]:
        """Labels ``a`` such that the constant labelling ``v ↦ a`` is feasible.

        On a toroidal grid an LCL is solvable in constant time if and only
        if such a label exists (see the discussion following Theorem 3).
        """
        feasible = []
        for label in self.alphabet:
            if not self.node_ok(label):
                continue
            if not self.horizontal_ok(label, label):
                continue
            if not self.vertical_ok(label, label):
                continue
            if not self.cross_ok(label, label, label, label, label):
                continue
            feasible.append(label)
        return tuple(feasible)

    def restrict_alphabet(self, labels: Iterable[Label]) -> "GridLCL":
        """Return a copy of the problem with the alphabet restricted to ``labels``."""
        labels = tuple(label for label in self.alphabet if label in set(labels))
        return GridLCL(
            name=f"{self.name}-restricted",
            alphabet=labels,
            node_predicate=self.node_predicate,
            horizontal=self.horizontal,
            vertical=self.vertical,
            cross_predicate=self.cross_predicate,
        )


@dataclass(frozen=True)
class EdgeGridLCL:
    """An edge-labelling LCL problem on oriented grids of any dimension.

    The constraint is evaluated at every node over the labels of its
    incident edges.  ``incident_predicate`` receives a tuple of
    ``(axis, sign, label)`` triples — ``sign`` is ``+1`` for the edge leaving
    the node in the positive direction of ``axis`` and ``-1`` for the edge
    arriving from the negative direction — so problems may distinguish the
    geometry of the incident edges (edge orientations need this; proper edge
    colouring does not).
    """

    name: str
    alphabet: Tuple[Label, ...]
    incident_predicate: Callable[[Tuple[Tuple[int, int, Label], ...]], bool]

    def __post_init__(self) -> None:
        if not self.alphabet:
            raise InvalidProblemError(f"problem {self.name!r} has an empty alphabet")

    def node_ok(self, incident: Tuple[Tuple[int, int, Label], ...]) -> bool:
        """Check the constraint at one node given its incident edge labels."""
        return bool(self.incident_predicate(incident))
