"""Core LCL machinery: problem specifications, verification, complexity classes."""

from repro.core.lcl import EdgeGridLCL, GridLCL, PairRelation
from repro.core.complexity import ComplexityClass, ClassificationResult
from repro.core.verifier import (
    VerificationResult,
    Violation,
    verify_edge_labelling,
    verify_node_labelling,
    verify_maximal_independent_set,
    verify_proper_edge_colouring,
    verify_proper_vertex_colouring,
)
from repro.core.catalog import (
    independent_set_problem,
    maximal_independent_set_problem,
    proper_edge_colouring_problem,
    vertex_colouring_problem,
)

__all__ = [
    "ClassificationResult",
    "ComplexityClass",
    "EdgeGridLCL",
    "GridLCL",
    "PairRelation",
    "VerificationResult",
    "Violation",
    "independent_set_problem",
    "maximal_independent_set_problem",
    "proper_edge_colouring_problem",
    "verify_edge_labelling",
    "verify_maximal_independent_set",
    "verify_node_labelling",
    "verify_proper_edge_colouring",
    "verify_proper_vertex_colouring",
    "vertex_colouring_problem",
]
