"""Deterministic fault-injection plane for the shared-memory runtime.

Chaos testing for the ``shm`` tier: a :class:`FaultPlan` describes, ahead
of time and reproducibly, which transport faults to inject — kill worker
*k* at round *r*, hang a reply for *t* seconds, corrupt a pipe message,
fail shared-segment creation on attempt *n*, fail the pool spawn *m*
times before letting it succeed.  The runtime consults the plane at
exactly three injection points, all inside :mod:`repro.runtime`:

* :func:`repro.runtime.pool._worker_main` — worker-side, between
  computing a round reply and sending it (``kill``/``hang``/``corrupt``);
* :class:`repro.runtime.pool.WorkerPool` construction — parent-side
  (:meth:`FaultPlan.fail_spawn`);
* :meth:`repro.runtime.buffers.SharedCodeBuffer.create` — parent-side
  (:meth:`FaultPlan.fail_segment_create`).

Nothing outside the runtime package may reference this module — the
contract lint (``fault-plane`` check in :mod:`repro.statics.contracts`)
enforces that, because an algorithm or engine layer steering on the fault
plan would make *results* depend on chaos configuration, which is exactly
what the equivalence suite must rule out.  Faults only ever break the
transport; the degrade/heal ladder keeps the labelling byte-identical.

Activation
----------

* Programmatic: :func:`install` a plan (or ``None``), or scope one with
  the :func:`active` context manager.  Worker processes inherit the
  installed plan at ``fork`` time, so install it **before** the pool
  spawns; a plan installed later is seen by parent-side hooks and by any
  workers respawned afterwards (:meth:`WorkerPool.heal`), but not by
  already-forked workers.
* Environment: set ``REPRO_FAULT_PLAN`` to the plan's JSON document (see
  :meth:`FaultPlan.to_json`).  The parsed plan is cached per raw string —
  the parent-side attempt counters must persist across injection-point
  calls — and an unparseable value warns once and is ignored.

When no plan is installed and the variable is unset, every injection
point reduces to one module-global check plus one ``environ`` lookup per
*round* (never per node): the plane is effectively zero-overhead.

Determinism
-----------

Worker-side fault matching is stateless — a fault fires when its
``worker``/``round`` selectors match (``None`` matches anything) — and
:meth:`WorkerPool.round` numbers rounds monotonically across retries, so
a fault pinned to round *r* fires exactly once: after a heal, the retry
runs as round *r+1* and the plan lets it through.  A fault with
``round=None`` fires on every attempt and therefore exhausts the heal
budget, forcing the degrade ladder.  :meth:`FaultPlan.random` derives a
plan from a seed alone, so chaos equivalence legs replay exactly.
"""

from __future__ import annotations

import json
import os
import pickle
import random as _random
import warnings
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

#: Environment variable holding a JSON fault plan (see module docstring).
PLAN_VARIABLE = "REPRO_FAULT_PLAN"

#: Worker-side fault kinds understood by the pool's injection point.
WORKER_FAULT_KINDS = ("kill", "hang", "corrupt")

#: How a ``corrupt`` fault mangles the reply: ``"garbage"`` sends bytes
#: that are not a pickle at all, ``"truncate"`` sends a prefix of the real
#: reply's pickle — both must surface as :class:`PoolBrokenError`.
CORRUPT_MODES = ("garbage", "truncate")


@dataclass(frozen=True)
class WorkerFault:
    """One worker-side fault: what to do, to whom, and when.

    ``worker``/``round`` are selectors (``None`` matches every worker /
    round); ``seconds`` applies to ``hang``, ``exit_code`` to ``kill``,
    ``mode`` to ``corrupt``.
    """

    kind: str
    worker: Optional[int] = None
    round: Optional[int] = None
    seconds: float = 30.0
    exit_code: int = 17
    mode: str = "garbage"

    def __post_init__(self) -> None:
        if self.kind not in WORKER_FAULT_KINDS:
            raise ValueError(
                f"unknown worker fault kind {self.kind!r}; "
                f"expected one of {WORKER_FAULT_KINDS}"
            )
        if self.mode not in CORRUPT_MODES:
            raise ValueError(
                f"unknown corrupt mode {self.mode!r}; "
                f"expected one of {CORRUPT_MODES}"
            )

    def matches(self, worker_id: int, round_id: int) -> bool:
        """Whether this fault fires for ``worker_id`` in ``round_id``."""
        return (self.worker is None or self.worker == worker_id) and (
            self.round is None or self.round == round_id
        )

    def corrupt_payload(self, reply: Any) -> bytes:
        """The raw bytes a ``corrupt`` fault sends instead of the reply."""
        if self.mode == "truncate":
            blob = pickle.dumps(reply)
            return blob[: max(1, len(blob) // 2)]
        return b"\xde\xad\xbe\xef not a pickle"

    def to_json(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "worker": self.worker,
            "round": self.round,
            "seconds": self.seconds,
            "exit_code": self.exit_code,
            "mode": self.mode,
        }

    @classmethod
    def from_json(cls, document: Dict[str, Any]) -> "WorkerFault":
        return cls(
            kind=str(document["kind"]),
            worker=None if document.get("worker") is None else int(document["worker"]),
            round=None if document.get("round") is None else int(document["round"]),
            seconds=float(document.get("seconds", 30.0)),
            exit_code=int(document.get("exit_code", 17)),
            mode=str(document.get("mode", "garbage")),
        )


class FaultPlan:
    """A deterministic set of faults to inject into one simulation.

    Worker-side matching (:meth:`worker_action`) is stateless, so forked
    workers can evaluate it against their inherited copy.  The spawn and
    segment counters are parent-side mutable state: each plan *instance*
    counts attempts, which is why the environment activation path caches
    the parsed plan per raw ``REPRO_FAULT_PLAN`` string.
    """

    def __init__(
        self,
        worker_faults: Iterable[WorkerFault] = (),
        spawn_failures: int = 0,
        segment_failures: Iterable[int] = (),
        seed: Optional[int] = None,
    ):
        self.worker_faults: Tuple[WorkerFault, ...] = tuple(worker_faults)
        self.spawn_failures = int(spawn_failures)
        self.segment_failures = frozenset(int(n) for n in segment_failures)
        self.seed = seed
        self._spawn_attempts = 0
        self._segment_attempts = 0

    # ------------------------------------------------------------------ #
    # Injection-point queries
    # ------------------------------------------------------------------ #

    def worker_action(self, worker_id: int, round_id: int) -> Optional[WorkerFault]:
        """The first fault that fires for this (worker, round), if any."""
        for fault in self.worker_faults:
            if fault.matches(worker_id, round_id):
                return fault
        return None

    def fail_spawn(self) -> bool:
        """Whether this pool-spawn attempt should fail (counts attempts)."""
        self._spawn_attempts += 1
        return self._spawn_attempts <= self.spawn_failures

    def fail_segment_create(self) -> bool:
        """Whether this segment-creation attempt should fail.

        Attempts are numbered from 1 across the plan's lifetime (a pool
        spawn creates two segments, so its double buffer consumes two
        attempt numbers).
        """
        self._segment_attempts += 1
        return self._segment_attempts in self.segment_failures

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #

    def to_json(self) -> str:
        """The JSON document accepted back by :meth:`from_json` and
        ``REPRO_FAULT_PLAN``."""
        return json.dumps(
            {
                "workers": [fault.to_json() for fault in self.worker_faults],
                "spawn_failures": self.spawn_failures,
                "segment_failures": sorted(self.segment_failures),
                "seed": self.seed,
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        document = json.loads(text)
        if not isinstance(document, dict):
            raise ValueError("a fault plan must be a JSON object")
        return cls(
            worker_faults=[
                WorkerFault.from_json(entry) for entry in document.get("workers", ())
            ],
            spawn_failures=int(document.get("spawn_failures", 0)),
            segment_failures=document.get("segment_failures", ()),
            seed=document.get("seed"),
        )

    @classmethod
    def random(
        cls,
        seed: int,
        workers: int = 2,
        rounds: int = 3,
        hang_seconds: float = 30.0,
        max_worker_faults: int = 2,
        allow_spawn_failures: bool = True,
        allow_segment_failures: bool = True,
    ) -> "FaultPlan":
        """Draw a reproducible plan for a schedule of ``rounds`` rounds.

        ``hang_seconds`` should comfortably exceed the configured
        ``REPRO_ROUND_TIMEOUT`` so a drawn hang deterministically trips
        the deadline instead of racing it.  The fault budget is sized so
        the default ``REPRO_POOL_RETRIES`` can absorb the worst draw:
        at most ``max_worker_faults`` single-round worker faults plus at
        most one spawn failure and one first-attempt segment failure.
        """
        rng = _random.Random(f"repro-fault-plan:{seed}")
        faults: List[WorkerFault] = []
        for _ in range(rng.randint(1, max(1, max_worker_faults))):
            faults.append(
                WorkerFault(
                    kind=rng.choice(WORKER_FAULT_KINDS),
                    worker=rng.randrange(max(1, workers)),
                    round=rng.randint(1, max(1, rounds)),
                    seconds=hang_seconds,
                    exit_code=rng.randint(1, 63),
                    mode=rng.choice(CORRUPT_MODES),
                )
            )
        spawn_failures = 1 if allow_spawn_failures and rng.random() < 0.25 else 0
        segment_failures: Tuple[int, ...] = (
            (1,) if allow_segment_failures and rng.random() < 0.15 else ()
        )
        return cls(faults, spawn_failures, segment_failures, seed=seed)

    # ------------------------------------------------------------------ #
    # Dunder plumbing
    # ------------------------------------------------------------------ #

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultPlan):
            return NotImplemented
        return (
            self.worker_faults == other.worker_faults
            and self.spawn_failures == other.spawn_failures
            and self.segment_failures == other.segment_failures
            and self.seed == other.seed
        )

    def __repr__(self) -> str:
        return (
            f"FaultPlan({len(self.worker_faults)} worker faults, "
            f"spawn_failures={self.spawn_failures}, "
            f"segment_failures={sorted(self.segment_failures)}, "
            f"seed={self.seed!r})"
        )


# --------------------------------------------------------------------- #
# Activation
# --------------------------------------------------------------------- #

_ACTIVE: Optional[FaultPlan] = None

#: ``(raw env string, parsed plan)`` — the plan instance must be stable
#: across injection-point calls so its attempt counters advance.
_ENV_CACHE: Tuple[Optional[str], Optional[FaultPlan]] = (None, None)


def install(plan: Optional[FaultPlan]) -> None:
    """Install ``plan`` as the process-wide active plan (``None`` clears)."""
    global _ACTIVE
    _ACTIVE = plan


@contextmanager
def active(plan: Optional[FaultPlan]) -> Iterator[Optional[FaultPlan]]:
    """Scope ``plan`` as the active plan, restoring the previous one."""
    previous = _ACTIVE
    install(plan)
    try:
        yield plan
    finally:
        install(previous)


def reset() -> None:
    """Clear the installed plan and the env parse cache (test isolation)."""
    global _ENV_CACHE
    install(None)
    _ENV_CACHE = (None, None)


def current_plan() -> Optional[FaultPlan]:
    """The active plan: the installed one, else ``REPRO_FAULT_PLAN``.

    Called once per injection point (per round / spawn / segment attempt,
    never per node).  With nothing installed and the variable unset this
    is one global check plus one ``environ`` lookup.
    """
    if _ACTIVE is not None:
        return _ACTIVE
    raw = os.environ.get(PLAN_VARIABLE)
    if not raw:
        return None
    global _ENV_CACHE
    cached_raw, cached_plan = _ENV_CACHE
    if raw != cached_raw:
        try:
            cached_plan = FaultPlan.from_json(raw)
        except Exception as error:  # noqa: BLE001 - a typo'd plan must not
            # crash the simulation; it degrades to "no faults", loudly.
            warnings.warn(
                f"ignoring unparseable {PLAN_VARIABLE}: {error}",
                RuntimeWarning,
                stacklevel=2,
            )
            cached_plan = None
        _ENV_CACHE = (raw, cached_plan)
    return _ENV_CACHE[1]
