"""Structured degradation telemetry for the engine stack.

Every tier boundary in the engine ladder (shm → parallel → indexed →
serial) used to report itself only through one-time ``RuntimeWarning``s.
Those warnings still fire — their exact texts are pinned by tests — but
they are now *emitted from* a structured :class:`DegradeEvent` record
that the engines accumulate, so callers (benchmarks, the CI resilience
pipeline, operators reading logs) can query what happened, per engine,
without scraping warning filters:

>>> engine.degrade_events          # doctest: +SKIP
(DegradeEvent(engine='shm', tier_from='shm', tier_to='shm', ...,
              healed=True),)

``healed=True`` events record a *recovery* — a :meth:`WorkerPool.heal`
respawn that kept the schedule on its tier — and never warn; only
genuine tier drops do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Optional


@dataclass(frozen=True)
class DegradeEvent:
    """One resilience event: a tier drop, or a heal that prevented one.

    ``rule`` is the rule's ``repr`` (not the object — events outlive the
    engines that record them) and ``round`` is the pool round counter at
    the time of the event, when a pool was involved.
    """

    engine: str
    tier_from: str
    tier_to: str
    reason: str
    rule: Optional[str] = None
    round: Optional[int] = None
    healed: bool = False

    def to_json(self) -> Dict[str, Any]:
        return {
            "engine": self.engine,
            "tier_from": self.tier_from,
            "tier_to": self.tier_to,
            "reason": self.reason,
            "rule": self.rule,
            "round": self.round,
            "healed": self.healed,
        }


@dataclass(frozen=True)
class StaticsEvent:
    """One static-analysis tier decision taken by an engine.

    Recorded only under ``REPRO_STATICS_AUTOPROVE=1``, when the purity
    prover — not a declared ``parallel_safe`` attribute — decides whether
    an undeclared rule may shard:

    * ``kind="autoprove"`` — the rule was interprocedurally
      ``PROVEN_SAFE`` and is executing on the sharded tier.
    * ``kind="autoblock"`` — the proof did not go through (``UNKNOWN``
      or ``PROVEN_UNSAFE``) and the rule stays on the serial tier.

    Like :class:`DegradeEvent`, ``rule`` is the rule's ``repr`` so the
    event can outlive the engine that recorded it.
    """

    engine: str
    kind: str
    rule: str
    detail: str

    def to_json(self) -> Dict[str, Any]:
        return {
            "engine": self.engine,
            "kind": self.kind,
            "rule": self.rule,
            "detail": self.detail,
        }


def summarise(events: Iterable[DegradeEvent]) -> Dict[str, int]:
    """Counts for the ``BENCH_*.json`` → ``bench-summary.json`` pipeline."""
    total = healed = 0
    for event in events:
        total += 1
        if event.healed:
            healed += 1
    return {"total": total, "healed": healed, "degraded": total - healed}
