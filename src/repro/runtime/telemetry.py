"""Structured degradation telemetry for the engine stack.

Every tier boundary in the engine ladder (shm → parallel → indexed →
serial) used to report itself only through one-time ``RuntimeWarning``s.
Those warnings still fire — their exact texts are pinned by tests — but
they are now *emitted from* a structured :class:`DegradeEvent` record
that the engines accumulate, so callers (benchmarks, the CI resilience
pipeline, operators reading logs) can query what happened, per engine,
without scraping warning filters:

>>> engine.degrade_events          # doctest: +SKIP
(DegradeEvent(engine='shm', tier_from='shm', tier_to='shm', ...,
              healed=True),)

``healed=True`` events record a *recovery* — a :meth:`WorkerPool.heal`
respawn that kept the schedule on its tier — and never warn; only
genuine tier drops do.

Event bus
---------

Beyond the per-engine ``degrade_events`` / ``statics_events`` lists, both
event types flow through one process-wide bus: engines call
:func:`publish` at the moment they append, and any subscriber registered
via :func:`subscribe` sees every event.  The observability metrics
registry (:func:`repro.observability.metrics.record_event`) is subscribed
by default, so degrade/autoprove activity shows up in every metrics
snapshot and trace export without the engines knowing about metrics at
all.  Both event types carry an ``event`` class tag (``"degrade"`` /
``"statics"``) that also leads their ``to_json()`` payloads, so bus
consumers can dispatch without isinstance checks.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Any, Callable, ClassVar, Dict, Iterable, List, Optional, Union


@dataclass(frozen=True)
class DegradeEvent:
    """One resilience event: a tier drop, or a heal that prevented one.

    ``rule`` is the rule's ``repr`` (not the object — events outlive the
    engines that record them) and ``round`` is the pool round counter at
    the time of the event, when a pool was involved.
    """

    event: ClassVar[str] = "degrade"

    engine: str
    tier_from: str
    tier_to: str
    reason: str
    rule: Optional[str] = None
    round: Optional[int] = None
    healed: bool = False

    def to_json(self) -> Dict[str, Any]:
        return {
            "event": self.event,
            "engine": self.engine,
            "tier_from": self.tier_from,
            "tier_to": self.tier_to,
            "reason": self.reason,
            "rule": self.rule,
            "round": self.round,
            "healed": self.healed,
        }


@dataclass(frozen=True)
class StaticsEvent:
    """One static-analysis tier decision taken by an engine.

    Recorded only under ``REPRO_STATICS_AUTOPROVE=1``, when the purity
    prover — not a declared ``parallel_safe`` attribute — decides whether
    an undeclared rule may shard:

    * ``kind="autoprove"`` — the rule was interprocedurally
      ``PROVEN_SAFE`` and is executing on the sharded tier.
    * ``kind="autoblock"`` — the proof did not go through (``UNKNOWN``
      or ``PROVEN_UNSAFE``) and the rule stays on the serial tier.

    Like :class:`DegradeEvent`, ``rule`` is the rule's ``repr`` so the
    event can outlive the engine that recorded it.
    """

    event: ClassVar[str] = "statics"

    engine: str
    kind: str
    rule: str
    detail: str

    def to_json(self) -> Dict[str, Any]:
        return {
            "event": self.event,
            "engine": self.engine,
            "kind": self.kind,
            "rule": self.rule,
            "detail": self.detail,
        }


TelemetryEvent = Union[DegradeEvent, StaticsEvent]

Subscriber = Callable[[TelemetryEvent], None]

_SUBSCRIBERS: List[Subscriber] = []


def subscribe(subscriber: Subscriber) -> Subscriber:
    """Register ``subscriber`` for every future :func:`publish`.

    Returns the subscriber so the call can be used as a decorator.
    """
    _SUBSCRIBERS.append(subscriber)
    return subscriber


def unsubscribe(subscriber: Subscriber) -> None:
    """Remove one registration (no-op when absent)."""
    try:
        _SUBSCRIBERS.remove(subscriber)
    except ValueError:
        pass


def publish(event: TelemetryEvent) -> None:
    """Fan ``event`` out to every subscriber.

    A subscriber that raises is reported as a ``RuntimeWarning`` and the
    remaining subscribers still run: telemetry is published from degrade
    paths where an observer bug must never change engine behaviour.
    """
    for subscriber in tuple(_SUBSCRIBERS):
        try:
            subscriber(event)
        except Exception as exc:
            warnings.warn(
                f"telemetry subscriber {subscriber!r} raised {exc!r}; event dropped for it",
                RuntimeWarning,
                stacklevel=2,
            )


def _subscribe_metrics() -> None:
    # The metrics registry is the one default bus consumer.  Imported
    # lazily-at-module-scope (observability never imports the runtime
    # layer, so this cannot cycle).
    from repro.observability.metrics import record_event

    subscribe(record_event)


_subscribe_metrics()


def summarise(events: Iterable[TelemetryEvent]) -> Dict[str, int]:
    """Counts for the ``BENCH_*.json`` → ``bench-summary.json`` pipeline.

    Accepts a mixed stream of :class:`DegradeEvent` and
    :class:`StaticsEvent`.  ``healed``/``degraded`` keep their original
    meaning (they partition the degrade events only); statics events are
    tallied under their ``kind`` (``autoprove``/``autoblock``).
    """
    summary = {"total": 0, "healed": 0, "degraded": 0, "autoprove": 0, "autoblock": 0}
    for event in events:
        summary["total"] += 1
        if isinstance(event, StaticsEvent):
            summary[event.kind] = summary.get(event.kind, 0) + 1
        elif event.healed:
            summary["healed"] += 1
        else:
            summary["degraded"] += 1
    return summary
