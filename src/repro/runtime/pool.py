"""The persistent worker pool driving ``shm``-tier rounds.

One :class:`WorkerPool` spawns its workers **once** — via ``fork``, so the
topology's ball tables (any :class:`repro.grid.topology.Topology`,
pre-warmed through
:meth:`~repro.grid.topology.Topology.warm_ball_tables`), the registered
rules (lambdas welcome, nothing is pickled) and a snapshot of the
:class:`repro.local_model.store.LabelCodec` are inherited through
copy-on-write memory — and then drives arbitrarily many rounds with small
per-round task messages over pipes.  Labellings never cross the pipes:
they live in the pool's two :class:`repro.runtime.buffers.SharedCodeBuffer`
segments (the double buffer), the parent publishing codes with
:func:`repro.local_model.store.export_codes_into` and merging results with
:func:`repro.local_model.store.merge_codes_from_shared`.

Round-barrier protocol
----------------------

Parent side (:meth:`WorkerPool.round`):

1. publish the round's codec delta (labels interned since the last sync,
   :meth:`LabelCodec.labels_since`) and send every worker one task message
   ``("round", round_id, rule_key, src, dst, delta)``;
2. wait for exactly one reply per worker — the barrier; no round ``k+1``
   message is sent while a round ``k`` reply is outstanding, so workers
   never race on the buffers;
3. on ``("error", …, index, exception)`` replies, re-raise the exception
   with the lowest flat index (sequential first-failing-node semantics,
   exactly as the ``parallel`` tier's merger);
4. otherwise intern the workers' overflow labels — outputs outside the
   fork-time alphabet, reported as ``(index, value)`` pairs because
   workers must never assign codes on their own — patch their codes into
   the destination buffer, and flip the current buffer.

Worker side (:func:`_worker_main`): attach to both buffers by name, then
loop — receive a task, :meth:`LabelCodec.extend` the delta, scan the
assigned ``[start, stop)`` chunk with the same itemgetter inner loop as
the indexed tier (reading ``src``, writing ``dst``), reply, repeat until
the ``("stop",)`` sentinel.

Failure, healing, degradation
-----------------------------

A worker that dies mid-round (crash, kill, corrupt or unpicklable reply)
is detected by the barrier — reply errors immediately, silent deaths via
aliveness polling, hangs via the optional ``REPRO_ROUND_TIMEOUT`` round
deadline — and surfaces as :class:`PoolBrokenError`.  The pool is then
*broken but not closed*: its buffers, surviving workers and codec sync
state stay intact, and :meth:`WorkerPool.heal` can respawn exactly the
workers that did not complete the round (re-forked from the parent's
current codec and registry, attached to the same segments), after which
the engine retries the failed round — bounded by ``REPRO_POOL_RETRIES``
with backoff — before taking the existing degrade ladder to the
per-round-fork ``parallel`` path.  Either way the labelling is never
wrong or partial: a broken round's destination buffer is discarded and
the retry (or the fallback tier) recomputes it from the untouched source
codes.  Rule exceptions, by contrast, leave the pool healthy: the
destination buffer is simply discarded and the next round reuses the
same workers.

Deterministic chaos for all of the above is injected through
:mod:`repro.runtime.faults` (``REPRO_FAULT_PLAN``); with no plan active
the injection points are a single no-op check per round.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from multiprocessing import connection as _mp_connection
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.grid.topology import Topology
from repro.local_model.algorithm import rule_traits
from repro.local_model.store import (
    LabelCodec,
    export_codes_into,
    merge_codes_from_shared,
    require_numpy,
    shm_available,
)
from repro.observability import metrics as _metrics
from repro.observability import trace as _trace
from repro.runtime.buffers import SharedCodeBuffer
from repro.runtime.faults import current_plan

#: Seconds between aliveness checks while a round's replies are pending.
#: Replies wake the barrier immediately (``multiprocessing.connection.wait``);
#: the interval only bounds how quickly a worker that died *without*
#: closing its pipe is noticed.  The barrier blocks as long as every
#: pending worker is alive — a slow rule is legitimate (unless a round
#: deadline is configured, see :func:`round_timeout_seconds`).
POLL_INTERVAL = 0.2

#: Seconds granted to workers to drain the stop sentinel before they are
#: terminated during shutdown.
SHUTDOWN_GRACE = 2.0

#: Base delay for spawn/heal retry backoff; attempt ``n`` sleeps
#: ``RETRY_BACKOFF * 2**n`` seconds.
RETRY_BACKOFF = 0.05

#: Environment variable: round deadline in seconds (default: no deadline).
TIMEOUT_VARIABLE = "REPRO_ROUND_TIMEOUT"

#: Environment variable: how many times spawn/heal-retry ladders may try
#: again after the first failure.
RETRIES_VARIABLE = "REPRO_POOL_RETRIES"

#: Default retry budget when ``REPRO_POOL_RETRIES`` is unset.
DEFAULT_POOL_RETRIES = 2

#: Wire-protocol revision for the optional per-chunk stats exchange.
#: The parent appends it to each round message only when a tracer is
#: active; a worker echoes a stats dict tagged with the same revision on
#: its ``ok`` reply.  Both sides ignore the extension unless the
#: revision matches exactly, so mixed parent/worker generations (a heal
#: respawning workers from newer parent code, an old trace-less parent)
#: simply fall back to the stats-free protocol instead of mismatching.
PROTOCOL_REV = 2


def round_timeout_seconds() -> Optional[float]:
    """The configured round deadline, or ``None`` when rounds may block.

    ``REPRO_ROUND_TIMEOUT`` is read once per pool, at spawn time.  Unset,
    empty and non-positive values all mean "no deadline" (the historical
    behaviour: the barrier waits as long as every pending worker stays
    alive); a value that does not parse as a number is a configuration
    error and raises rather than silently disabling the supervisor.
    """
    raw = os.environ.get(TIMEOUT_VARIABLE, "").strip()
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError as error:
        raise SimulationError(
            f"{TIMEOUT_VARIABLE} must be a number of seconds, got {raw!r}"
        ) from error
    return value if value > 0 else None


def pool_retry_budget() -> int:
    """How many retries spawn/heal ladders get (``REPRO_POOL_RETRIES``)."""
    raw = os.environ.get(RETRIES_VARIABLE, "").strip()
    if not raw:
        return DEFAULT_POOL_RETRIES
    try:
        value = int(raw)
    except ValueError as error:
        raise SimulationError(
            f"{RETRIES_VARIABLE} must be an integer, got {raw!r}"
        ) from error
    return max(0, value)


class PoolBrokenError(SimulationError):
    """The pool's protocol failed (dead worker, closed pipe, bad reply).

    Deliberately distinct from rule exceptions: the engine treats a broken
    pool as an environmental failure and re-runs the round on a fallback
    tier, whereas a rule exception is the (byte-identical) result.
    """


def _worker_main(
    worker_id: int,
    start: int,
    stop: int,
    connection,
    indexer: Topology,
    codec: LabelCodec,
    rules: Dict[int, Any],
    buffer_names: Tuple[str, str],
    node_count: int,
) -> None:
    """Worker loop: attach, serve rounds, exit on the stop sentinel.

    Runs in a forked child; every argument is inherited by memory (no
    pickling), and ``codec`` is the child's private copy-on-write clone of
    the parent's codec — mutating it through :meth:`LabelCodec.extend`
    never touches the parent.
    """
    buffers = [
        SharedCodeBuffer.attach(name, node_count) for name in buffer_names
    ]
    caches: Dict[int, _ChunkCache] = {}
    try:
        while True:
            try:
                message = connection.recv()
            except (EOFError, OSError):
                break
            if message[0] != "round":
                break
            # Field 8 (the stats revision) arrived with PROTOCOL_REV 2;
            # tolerate its absence so a healed pool can mix generations.
            _, round_id, rule_key, src_index, dst_index, delta, reuse = message[:7]
            stats_rev = message[7] if len(message) > 7 else 0
            codec.extend(delta)
            cache = caches.get(rule_key)
            if cache is None:
                cache = caches[rule_key] = _ChunkCache(
                    indexer, rules[rule_key], start, stop, node_count
                )
            reply = _run_chunk(
                rules[rule_key],
                codec,
                cache,
                buffers[src_index].array,
                buffers[dst_index].array,
                start,
                stop,
                round_id,
                worker_id,
                reuse,
                collect_stats=stats_rev == PROTOCOL_REV,
            )
            fault = _worker_fault(worker_id, round_id)
            if fault is not None:
                if fault.kind == "kill":
                    # Die exactly like a crashed worker: no cleanup, no
                    # reply, pipe collapses with the process.
                    os._exit(fault.exit_code)
                if fault.kind == "hang":
                    time.sleep(fault.seconds)
                elif fault.kind == "corrupt":
                    try:
                        connection.send_bytes(fault.corrupt_payload(reply))
                    except Exception:  # noqa: BLE001 - pipe gone
                        break
                    continue
            try:
                connection.send(reply)
            except Exception:  # noqa: BLE001 - reply unpicklable / pipe gone:
                # the parent's barrier will observe the dead worker and
                # degrade; nothing useful can be sent any more.
                break
    finally:
        for buffer in buffers:
            buffer.close()
        connection.close()


def _worker_fault(worker_id: int, round_id: int):
    """The fault (if any) the active plan injects for this reply.

    Workers see the plan that was installed in the parent at their fork
    time (or the live ``REPRO_FAULT_PLAN`` environment value); with no
    plan active this is a single global check per round.
    """
    plan = current_plan()
    if plan is None:
        return None
    return plan.worker_action(worker_id, round_id)


class _ChunkCache:
    """Per-(worker, rule) decode state reused across rounds.

    A worker's chunk of round ``k``'s source buffer is — whenever the
    parent grants ``reuse`` — exactly the value list the worker itself
    computed in round ``k-1``, so only the *halo* (the gathered indices
    outside the worker's own chunk, a couple of grid rows) needs decoding
    from codes each round.  ``values`` is a full-length list that is only
    ever correct on ``chunk ∪ halo`` — precisely the indices this chunk's
    gathers touch; everything else stays ``None``.
    """

    __slots__ = ("offsets", "getters", "halo", "values", "last_round")

    def __init__(self, indexer, rule, start, stop, node_count):
        ball_spec = rule_traits(rule).ball_spec
        self.offsets, table = indexer.ball_table(*ball_spec)
        _, self.getters = indexer.ball_getters(*ball_spec)
        self.halo = sorted(
            {
                index
                for row in table[start:stop]
                for index in row
                if not start <= index < stop
            }
        )
        self.values: List[Any] = [None] * node_count
        self.last_round = -1


def _run_chunk(
    rule,
    codec: LabelCodec,
    cache: _ChunkCache,
    src,
    dst,
    start: int,
    stop: int,
    round_id: int,
    worker_id: int,
    reuse: bool,
    collect_stats: bool = False,
) -> Tuple:
    """Evaluate ``[start, stop)`` of one round against the shared buffers.

    The inner loop matches the indexed tier's: the same itemgetter gather
    over a flat value list, the same dict-of-offsets view, so per-node
    semantics (and exceptions) are byte-identical.  The value list comes
    from the :class:`_ChunkCache`: with ``reuse`` (the parent vouches that
    the source buffer is exactly the previous round's output and this
    worker completed that round) only the halo is decoded from codes;
    otherwise the chunk and halo are decoded fresh.  Outputs are encoded
    with :meth:`LabelCodec.try_encode` — outputs outside the known
    alphabet get the ``-1`` sentinel in ``dst`` and travel back as
    ``(index, value)`` overflow for the parent to intern authoritatively
    (the cache keeps the raw *values*, so overflow costs nothing here).

    On the first raising node the scan stops (the sequential scan never
    evaluates nodes past a failure) and ``("error", round_id, worker_id,
    index, exception)`` reports the failing flat index.

    With ``collect_stats`` (the parent set the :data:`PROTOCOL_REV` field
    on the round message, i.e. a tracer is active there) the ``ok`` reply
    grows a fifth element: a stats dict with the chunk's wall time,
    decode counts and cache-reuse outcome, tagged with ``rev`` so the
    parent only merges stats from its own protocol generation.  Error
    replies never change shape.
    """
    started = _trace.clock() if collect_stats else 0.0
    labels = codec._labels  # the worker's private copy; hot path
    codes_map = codec._codes
    update = rule.update
    offsets = cache.offsets
    getters = cache.getters
    values = cache.values
    reused = reuse and cache.last_round == round_id - 1
    if not reused:
        values[start:stop] = map(labels.__getitem__, src[start:stop].tolist())
    for index in cache.halo:
        values[index] = labels[src[index]]
    out_values: List[Any] = []
    try:
        for position in range(start, stop):
            out_values.append(update(dict(zip(offsets, getters[position](values)))))
    except Exception as error:  # noqa: BLE001 - shipped back for ordered re-raise
        cache.last_round = -1
        return ("error", round_id, worker_id, start + len(out_values), error)
    overflow: List[Tuple[int, Any]] = []
    try:
        # The steady state (a closed alphabet) encodes the whole chunk in
        # one C-level pass; any unknown or unhashable output drops to the
        # per-element path below, which reports it as overflow.
        out_codes: Sequence[int] = list(map(codes_map.__getitem__, out_values))
    except (KeyError, TypeError):
        try_encode = codec.try_encode
        out_codes = []
        for offset_index, value in enumerate(out_values):
            code = try_encode(value)
            if code is None:
                overflow.append((start + offset_index, value))
                code = -1
            out_codes.append(code)
    dst[start:stop] = out_codes
    values[start:stop] = out_values
    cache.last_round = round_id
    if collect_stats:
        stats = {
            "rev": PROTOCOL_REV,
            "wall": _trace.clock() - started,
            "nodes": stop - start,
            "decoded": (0 if reused else stop - start) + len(cache.halo),
            "reused": reused,
            "overflow": len(overflow),
        }
        return ("ok", round_id, worker_id, overflow, stats)
    return ("ok", round_id, worker_id, overflow)


class WorkerPool:
    """A persistent pool of forked workers over double-buffered shm codes.

    Parameters
    ----------
    indexer:
        The grid's index tables; ball tables of every registered rule are
        warmed before the fork (the table handoff).
    codec:
        The parent's authoritative codec.  The pool records its size at
        spawn time and ships append-only deltas with every round.
    rules:
        ``{key: rule}`` registry of the rules this pool can run.  Keys are
        opaque (the engine uses ``id(rule)``); the registry holds strong
        references, keeping the keys unique for the pool's lifetime.
    chunks:
        The ``(start, stop)`` shards, one worker process per chunk (the
        engine plans them with
        :func:`repro.local_model.engine.plan_chunks`).
    round_timeout:
        Round deadline in seconds; ``None`` (the default) resolves
        ``REPRO_ROUND_TIMEOUT``, non-positive values disable the
        deadline.
    """

    def __init__(
        self,
        indexer: Topology,
        codec: LabelCodec,
        rules: Dict[int, Any],
        chunks: Sequence[Tuple[int, int]],
        round_timeout: Optional[float] = None,
    ):
        require_numpy()
        if not shm_available():
            raise PoolBrokenError(
                "shared-memory worker pools need numpy, "
                "multiprocessing.shared_memory and the fork start method"
            )
        if not chunks:
            raise PoolBrokenError("a worker pool needs at least one chunk")
        self.indexer = indexer
        self.codec = codec
        self.rules = dict(rules)
        self.node_count = indexer.node_count
        self.chunks = list(chunks)
        self._round_id = 0
        self._synced_alphabet = codec.size
        self._current = 0
        self._closed = False
        if round_timeout is None:
            self.round_timeout = round_timeout_seconds()
        else:
            self.round_timeout = round_timeout if round_timeout > 0 else None
        # Broken-but-healable state: ``_broken_reason`` is set by the
        # barrier on a protocol failure (the pool refuses work until
        # healed or closed), ``_trusted`` holds the worker ids whose
        # round replies were consumed before the break — they completed
        # the round and are still blocked on the next recv, so heal()
        # keeps them and respawns everyone else.
        self._broken_reason: Optional[str] = None
        self._trusted: set = set()
        self.respawned_workers = 0
        # ``_dirty`` tracks whether the current buffer's contents are
        # anything other than the previous round's outputs (fresh pool,
        # external load, failed round); workers may only reuse their
        # cached chunk values when it is clear.  ``_last_snapshot`` is the
        # read-only array handed out by :meth:`snapshot`, letting
        # :meth:`submit` prove "these codes are still exactly what the
        # buffer holds" by identity.
        self._dirty = True
        self._last_snapshot = None
        # Last line of defence before processes fork: a registered rule
        # whose body is statically proven impure gets its one-time
        # RuntimeWarning (or a RuntimeError under REPRO_STATICS_STRICT=1)
        # here, even when the pool is driven without the shm engine.  The
        # per-rule verdicts (interprocedural analysis, memoised) are kept
        # on the pool so operators and the equivalence harness can audit
        # what the prover thought of every sharded rule.
        from repro.statics.purity import analyse_rule, maybe_warn_parallel_unsafe

        self.spawn_verdicts: Dict[int, str] = {}
        for key, rule in self.rules.items():
            maybe_warn_parallel_unsafe(rule)
            self.spawn_verdicts[key] = analyse_rule(rule).verdict.value
        indexer.warm_ball_tables(
            {rule_traits(rule).ball_spec for rule in self.rules.values()}
        )
        self._buffers = []
        self._connections: List[Any] = []
        self._processes: List[Any] = []
        try:
            plan = current_plan()
            if plan is not None and plan.fail_spawn():
                raise OSError("injected pool spawn failure")
            self._buffers = [
                SharedCodeBuffer.create(self.node_count) for _ in range(2)
            ]
            context = multiprocessing.get_context("fork")
            buffer_names = tuple(buffer.name for buffer in self._buffers)
            for worker_id, (start, stop) in enumerate(self.chunks):
                parent_end, child_end = context.Pipe()
                process = context.Process(
                    target=_worker_main,
                    # Under the fork start method the args are inherited by
                    # memory, not pickled — the whole point of the design.
                    args=(
                        worker_id,
                        start,
                        stop,
                        child_end,
                        self.indexer,
                        self.codec,
                        self.rules,
                        buffer_names,
                        self.node_count,
                    ),
                    daemon=True,
                )
                process.start()
                child_end.close()
                self._connections.append(parent_end)
                self._processes.append(process)
        except Exception:
            self.close()
            raise
        _metrics.registry().inc("pool_spawns_total")

    @classmethod
    def spawn(
        cls,
        indexer: Topology,
        codec: LabelCodec,
        rules: Dict[int, Any],
        chunks: Sequence[Tuple[int, int]],
        retries: Optional[int] = None,
        backoff: Optional[float] = None,
    ) -> "WorkerPool":
        """Construct a pool, retrying transient spawn failures with backoff.

        Segment creation and process forks can fail transiently (name
        collisions, momentary fd/pid pressure); the budget comes from
        ``REPRO_POOL_RETRIES`` unless ``retries`` overrides it.
        :class:`PoolBrokenError` raised by the constructor itself is a
        *precondition* failure (no shm support, no chunks) that time will
        not fix, and is re-raised immediately.
        """
        budget = pool_retry_budget() if retries is None else max(0, int(retries))
        delay = RETRY_BACKOFF if backoff is None else backoff
        attempt = 0
        while True:
            try:
                return cls(indexer, codec, rules, chunks)
            except PoolBrokenError:
                raise
            except Exception:
                if attempt >= budget:
                    raise
                time.sleep(delay * (2**attempt))
                attempt += 1

    # ------------------------------------------------------------------ #
    # The double buffer
    # ------------------------------------------------------------------ #

    @property
    def current_index(self) -> int:
        """Which buffer currently holds the labelling (0 or 1)."""
        return self._current

    @property
    def synced_alphabet(self) -> int:
        """How many codec labels the workers have been synced to."""
        return self._synced_alphabet

    @property
    def rounds_run(self) -> int:
        """How many rounds this pool has completed or attempted."""
        return self._round_id

    def load(self, codes) -> None:
        """Publish a code vector into the current source buffer."""
        self._require_healthy()
        export_codes_into(codes, self._buffers[self._current].array)
        self._dirty = True
        self._last_snapshot = None

    def submit(self, codes) -> None:
        """Publish codes for the next round, skipping the copy when they
        are the pool's own latest snapshot (the common schedule chain
        ``snapshot -> store -> next apply``) — that also preserves the
        workers' reuse fast path, since the buffer provably still holds
        the previous round's outputs."""
        self._require_healthy()
        if codes is self._last_snapshot:
            return
        self.load(codes)

    def snapshot(self):
        """The current labelling, copied out into owned memory.

        The returned array is marked read-only: it doubles as the identity
        token of :meth:`submit`, so nothing may mutate it in place
        (:class:`repro.local_model.store.ArrayLabelStore` copies on first
        write instead).
        """
        self._require_healthy()
        array = merge_codes_from_shared(self._buffers[self._current].array)
        array.setflags(write=False)
        self._last_snapshot = array
        return array

    # ------------------------------------------------------------------ #
    # Rounds
    # ------------------------------------------------------------------ #

    def round(self, rule_key: int) -> None:
        """Run one rule application over the loaded labelling (see module doc).

        On success the destination buffer becomes current (the swap).  A
        raising rule re-raises the lowest-flat-index exception and leaves
        the pool healthy with the source buffer still current; protocol
        failures raise :class:`PoolBrokenError` after marking the pool
        broken — :meth:`heal` can then repair it, or :meth:`close` ends it.
        """
        self._require_healthy()
        if rule_key not in self.rules:
            raise PoolBrokenError(
                f"rule key {rule_key} is not registered with this pool"
            )
        src, dst = self._current, 1 - self._current
        self._round_id += 1
        self._last_snapshot = None
        delta = self.codec.labels_since(self._synced_alphabet)
        reuse = not self._dirty
        tracer = _trace.ACTIVE
        # The stats field makes workers time their chunks; only ask when
        # a tracer is there to consume the answer.
        stats_rev = PROTOCOL_REV if tracer is not None else 0
        message = (
            "round", self._round_id, rule_key, src, dst, delta, reuse, stats_rev
        )
        registry = _metrics.registry()
        registry.inc("pool_rounds_total")
        if delta:
            registry.inc("pool_codec_delta_labels_total", len(delta))
        if reuse:
            registry.inc("pool_reuse_granted_total")
        round_span = (
            tracer.span(
                _trace.SPAN_POOL_ROUND,
                round=self._round_id,
                workers=len(self._connections),
                reuse=reuse,
            )
            if tracer is not None
            else _trace.NOOP_SPAN
        )
        with round_span:
            try:
                for connection in self._connections:
                    connection.send(message)
            except Exception as error:
                # No worker is trusted: some received the round and will
                # compute it, but heal() replaces their connections, so any
                # late replies die with the old pipes.
                self._note_break(
                    (), f"round {self._round_id} could not be dispatched"
                )
                raise PoolBrokenError(
                    f"could not dispatch round {self._round_id} to the worker "
                    f"pool: {error!r}"
                ) from error
            # The delta (and any labels it carried) is now part of every
            # worker's codec, whatever the round's outcome.
            self._synced_alphabet = self.codec.size
            with registry.timed("pool_round_barrier_seconds"):
                replies = self._collect_replies()
            if tracer is not None:
                self._merge_worker_stats(tracer, replies)
            failures = [
                (reply[3], reply[4]) for reply in replies if reply[0] == "error"
            ]
            if failures:
                # The destination buffer is part-written garbage and some
                # workers' caches are ahead of the (unswapped) source buffer:
                # the next round must rebuild from codes.
                self._dirty = True
                _, error = min(failures, key=lambda failure: failure[0])
                raise error
            destination = self._buffers[dst].array
            encode = self.codec.encode
            for reply in sorted(replies, key=lambda reply: reply[2]):
                overflow = reply[3]
                if overflow:
                    # One vectorised patch per worker: overflow bursts (a rule
                    # minting thousands of new labels in one round) must not
                    # degenerate into per-element numpy writes.
                    np = require_numpy()
                    positions = np.fromiter(
                        (position for position, _ in overflow),
                        dtype=np.int64,
                        count=len(overflow),
                    )
                    codes = np.fromiter(
                        (encode(value) for _, value in overflow),
                        dtype=np.int32,
                        count=len(overflow),
                    )
                    destination[positions] = codes
                    registry.inc("pool_overflow_interned_total", len(overflow))
            self._current = dst
            self._dirty = False

    def _merge_worker_stats(self, tracer, replies: List[Tuple]) -> None:
        """Fold rev-matching worker stats into the parent trace + metrics.

        Worker chunks ran concurrently during the barrier, so each one is
        back-dated by its own wall time and rendered on a per-worker lane
        (``tid = worker_id + 1``; the parent keeps lane 0).  Replies from
        other protocol generations — no stats field, or a foreign ``rev``
        — are silently skipped.
        """
        registry = _metrics.registry()
        for reply in sorted(replies, key=lambda reply: reply[2]):
            if reply[0] != "ok" or len(reply) <= 4:
                continue
            stats = reply[4]
            if not (isinstance(stats, dict) and stats.get("rev") == PROTOCOL_REV):
                continue
            wall = float(stats.get("wall", 0.0))
            registry.observe("worker_chunk_seconds", wall)
            if stats.get("reused"):
                registry.inc("worker_halo_reuse_total")
            tracer.record(
                _trace.SPAN_WORKER_CHUNK,
                wall,
                tid=int(reply[2]) + 1,
                worker=int(reply[2]),
                round=int(reply[1]),
                nodes=stats.get("nodes"),
                decoded=stats.get("decoded"),
                reused=stats.get("reused"),
                overflow=stats.get("overflow"),
            )

    def _collect_replies(self) -> List[Tuple]:
        deadline = (
            None
            if self.round_timeout is None
            else time.monotonic() + self.round_timeout
        )
        pending = {
            connection: worker_id
            for worker_id, connection in enumerate(self._connections)
        }
        replies: List[Tuple] = []
        # Workers whose replies were consumed: they completed the round
        # and survive a heal() untouched.
        trusted: List[int] = []
        while pending:
            # wait() wakes the moment any reply (or EOF) arrives; the
            # timeout only paces the aliveness sweep for workers that died
            # without their pipe collapsing — and, when a round deadline
            # is configured, caps how long a hung worker can stall the
            # barrier.
            wait_for = POLL_INTERVAL
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0.0:
                    stragglers = sorted(pending.values())
                    self._note_break(
                        trusted,
                        f"round {self._round_id} exceeded its "
                        f"{self.round_timeout}s deadline",
                    )
                    raise PoolBrokenError(
                        f"round {self._round_id} exceeded its "
                        f"{self.round_timeout}s deadline waiting on "
                        f"workers {stragglers}"
                    )
                wait_for = min(POLL_INTERVAL, remaining)
            ready = _mp_connection.wait(list(pending), timeout=wait_for)
            for connection in ready:
                worker_id = pending[connection]
                try:
                    reply = connection.recv()
                except (EOFError, OSError) as error:
                    self._note_break(
                        trusted,
                        f"worker {worker_id} closed its pipe mid-round",
                    )
                    raise PoolBrokenError(
                        f"worker {worker_id} closed its pipe mid-round: "
                        f"{error!r}"
                    ) from error
                except Exception as error:
                    # Truncated or corrupt pipe messages surface as
                    # UnpicklingError (and friends); they are protocol
                    # failures exactly like a closed pipe and must reach
                    # the degrade ladder as PoolBrokenError, never leak
                    # raw to the caller.
                    self._note_break(
                        trusted,
                        f"worker {worker_id} sent an unreadable reply",
                    )
                    raise PoolBrokenError(
                        f"worker {worker_id} sent an unreadable reply for "
                        f"round {self._round_id}: {error!r}"
                    ) from error
                if not (
                    isinstance(reply, tuple)
                    and len(reply) >= 4
                    and reply[0] in ("ok", "error")
                ):
                    self._note_break(
                        trusted, f"worker {worker_id} sent a malformed reply"
                    )
                    raise PoolBrokenError(
                        f"worker {worker_id} sent a malformed reply for "
                        f"round {self._round_id}: {reply!r}"
                    )
                if reply[1] != self._round_id:
                    self._note_break(
                        trusted,
                        f"worker {worker_id} answered the wrong round",
                    )
                    raise PoolBrokenError(
                        f"worker {worker_id} answered round {reply[1]}, "
                        f"expected {self._round_id}"
                    )
                replies.append(reply)
                trusted.append(worker_id)
                del pending[connection]
            if pending and not ready:
                for connection, worker_id in pending.items():
                    process = self._processes[worker_id]
                    if not process.is_alive():
                        exitcode = process.exitcode
                        self._note_break(
                            trusted, f"worker {worker_id} died mid-round"
                        )
                        raise PoolBrokenError(
                            f"worker {worker_id} died during round "
                            f"{self._round_id} (exit code {exitcode})"
                        )
        return replies

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def _require_open(self) -> None:
        if self._closed:
            raise PoolBrokenError("the worker pool has been shut down")

    def _require_healthy(self) -> None:
        self._require_open()
        if self._broken_reason is not None:
            raise PoolBrokenError(
                f"the worker pool is broken ({self._broken_reason}); "
                "heal() it or shut it down"
            )

    def _note_break(self, trusted, reason: str) -> None:
        """Mark the pool broken-but-healable after a protocol failure.

        Resources stay alive — buffers mapped, surviving workers blocked
        on their pipes — so :meth:`heal` can repair in place; until then
        every entry point refuses work.  The source buffer still holds
        the round's input codes, but some workers' caches may be ahead of
        it, so the next (healed) round must decode fresh.
        """
        self._broken_reason = reason
        self._trusted = set(trusted)
        self._dirty = True
        self._last_snapshot = None

    def heal(self) -> int:
        """Respawn every worker that did not complete the broken round.

        Untrusted workers are terminated (a hung worker is exactly the
        case that needs it) and re-forked from the parent's *current*
        state: the live codec (``extend`` is idempotent, so the usual
        round deltas stay correct for mixed fork points), the same rule
        registry, the same shared segments.  Trusted workers — those
        whose round replies were consumed — keep running untouched.
        Returns the number of workers respawned (0 when the pool was not
        broken); if a respawn itself fails the pool is closed for good
        and :class:`PoolBrokenError` is raised.
        """
        self._require_open()
        if self._broken_reason is None:
            return 0
        respawned = 0
        try:
            context = multiprocessing.get_context("fork")
            buffer_names = tuple(buffer.name for buffer in self._buffers)
            for worker_id, (start, stop) in enumerate(self.chunks):
                if worker_id in self._trusted:
                    continue
                process = self._processes[worker_id]
                if process.is_alive():
                    process.terminate()
                process.join(timeout=SHUTDOWN_GRACE)
                if process.is_alive():
                    process.kill()
                    process.join(timeout=SHUTDOWN_GRACE)
                try:
                    self._connections[worker_id].close()
                except Exception:  # noqa: BLE001 - pipe may already be gone
                    pass
                parent_end, child_end = context.Pipe()
                replacement = context.Process(
                    target=_worker_main,
                    args=(
                        worker_id,
                        start,
                        stop,
                        child_end,
                        self.indexer,
                        self.codec,
                        self.rules,
                        buffer_names,
                        self.node_count,
                    ),
                    daemon=True,
                )
                replacement.start()
                child_end.close()
                self._connections[worker_id] = parent_end
                self._processes[worker_id] = replacement
                respawned += 1
        except Exception as error:
            self.close()
            raise PoolBrokenError(
                f"could not heal the worker pool: {error!r}"
            ) from error
        self._broken_reason = None
        self._trusted = set()
        self._dirty = True
        self._last_snapshot = None
        self.respawned_workers += respawned
        registry = _metrics.registry()
        registry.inc("pool_heals_total")
        registry.inc("pool_worker_respawns_total", respawned)
        return respawned

    def close(self) -> None:
        """Deterministic shutdown: stop workers, join, unlink the segments.

        Idempotent.  Workers get the stop sentinel and a grace period;
        stragglers (e.g. stuck mid-rule) are terminated so the segments can
        be unlinked without racing attached mappings.
        """
        if self._closed:
            return
        self._closed = True
        for connection in self._connections:
            try:
                connection.send(("stop",))
            except Exception:  # noqa: BLE001 - pipe may already be gone
                pass
        for process in self._processes:
            process.join(timeout=SHUTDOWN_GRACE)
        for process in self._processes:
            if process.is_alive():
                # Stuck mid-rule (or hung): terminate so the segments can
                # be unlinked without racing an attached mapping.
                process.terminate()
                process.join(timeout=SHUTDOWN_GRACE)
        for connection in self._connections:
            try:
                connection.close()
            except Exception:  # noqa: BLE001
                pass
        for buffer in self._buffers:
            buffer.unlink()
        self._connections = []
        self._processes = []
        self._buffers = []

    @property
    def closed(self) -> bool:
        """Whether the pool has been shut down."""
        return self._closed

    @property
    def broken(self) -> bool:
        """Whether the pool is broken-but-healable (see :meth:`heal`)."""
        return self._broken_reason is not None

    @property
    def broken_reason(self) -> Optional[str]:
        """Why the pool broke, or ``None`` while it is healthy."""
        return self._broken_reason

    @property
    def worker_count(self) -> int:
        """Number of live worker processes (0 after shutdown)."""
        return len(self._processes)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def __repr__(self) -> str:
        if self._closed:
            state = "closed"
        elif self._broken_reason is not None:
            state = f"broken: {self._broken_reason}"
        else:
            state = f"{len(self._processes)} workers"
        return (
            f"WorkerPool({self.indexer.grid!r}, {len(self.rules)} rules, "
            f"{state}, round {self._round_id})"
        )
