"""Shared-memory code buffers: the transport layer of the ``shm`` tier.

A :class:`SharedCodeBuffer` wraps one POSIX shared-memory segment
(:mod:`multiprocessing.shared_memory`) holding a length-``node_count``
``int32`` code vector — exactly the payload of
:class:`repro.local_model.store.ArrayLabelStore`.  The
:class:`repro.runtime.pool.WorkerPool` owns two of them (the double
buffer): workers read the whole source vector while writing only their own
chunk of the destination vector, so no synchronisation beyond the round
barrier is needed.

Lifecycle
---------

* The *creator* (the parent process) calls :meth:`SharedCodeBuffer.create`,
  which picks a collision-free segment name (retrying on
  ``FileExistsError`` — another process may own the name) and registers a
  :func:`weakref.finalize` guard so that a buffer dropped without
  :meth:`unlink` still releases its segment, but only from the creating
  process (a forked child inherits the Python object and must never unlink
  the parent's segment from its own garbage collector).
* Workers call :meth:`SharedCodeBuffer.attach` with the segment name and
  :meth:`close` their mapping on exit; they never unlink.
* ``multiprocessing``'s resource tracker is the crash backstop: the parent
  registers the segment on creation, so if the whole process tree dies
  without cleanup the tracker unlinks the orphaned segment at exit (with a
  leak warning — clean shutdown through :meth:`unlink` stays silent).
"""

from __future__ import annotations

import os
import secrets
import weakref
from typing import Iterable, Iterator, Optional

from repro.errors import SimulationError
from repro.local_model.store import require_numpy
from repro.runtime.faults import current_plan

try:  # pragma: no cover - absent only on exotic platforms
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None

#: How many candidate segment names :meth:`SharedCodeBuffer.create` tries
#: before giving up.  Collisions are only possible against segments owned
#: by unrelated processes, so two attempts are already unlikely.
MAX_NAME_ATTEMPTS = 16

_CODE_ITEMSIZE = 4  # int32


def _require_shared_memory():
    if _shared_memory is None:  # pragma: no cover - exercised on exotic platforms
        raise SimulationError(
            "the 'shm' engine tier requires multiprocessing.shared_memory, "
            "which this platform does not provide"
        )
    return _shared_memory


def default_segment_names() -> Iterator[str]:
    """Candidate segment names: pid-scoped with a random suffix.

    The pid keeps concurrent test runs apart, the random suffix keeps
    buffers within one process apart; a stale segment left by a crashed
    run with the same pid is still survived by the retry loop in
    :meth:`SharedCodeBuffer.create`.
    """
    while True:
        yield f"repro_shm_{os.getpid()}_{secrets.token_hex(4)}"


def _finalize_segment(name: str, creator_pid: int) -> None:
    """Best-effort unlink of an orphaned segment, creator process only."""
    if os.getpid() != creator_pid or _shared_memory is None:
        return
    try:
        segment = _shared_memory.SharedMemory(name=name)
    except (FileNotFoundError, OSError):
        return
    try:
        segment.close()
        segment.unlink()
    except (FileNotFoundError, OSError):  # pragma: no cover - already gone
        pass


class SharedCodeBuffer:
    """One shared ``int32`` code vector of a fixed node count."""

    def __init__(self, segment, node_count: int, owner: bool):
        np = require_numpy()
        self._segment = segment
        self._owner = owner
        self.node_count = node_count
        self._array: Optional[object] = np.ndarray(
            (node_count,), dtype=np.int32, buffer=segment.buf
        )
        self._finalizer = None
        if owner:
            self._finalizer = weakref.finalize(
                self, _finalize_segment, segment.name, os.getpid()
            )

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def create(
        cls, node_count: int, names: Optional[Iterable[str]] = None
    ) -> "SharedCodeBuffer":
        """Create a fresh segment, retrying on segment-name collisions.

        ``names`` overrides the candidate-name stream (used by tests to
        force collisions); by default names come from
        :func:`default_segment_names`.
        """
        shared_memory = _require_shared_memory()
        if node_count <= 0:
            raise SimulationError(
                f"a shared code buffer needs a positive node count, got {node_count}"
            )
        plan = current_plan()
        if plan is not None and plan.fail_segment_create():
            # Chaos hook: stands in for transient allocation failures
            # (shm_open ENOSPC/EMFILE) that the spawn retry ladder in
            # WorkerPool.spawn must absorb.
            raise OSError("injected shared-segment creation failure")
        candidates = iter(names) if names is not None else default_segment_names()
        last_error: Optional[BaseException] = None
        for _ in range(MAX_NAME_ATTEMPTS):
            try:
                name = next(candidates)
            except StopIteration:
                break
            try:
                segment = shared_memory.SharedMemory(
                    name=name, create=True, size=node_count * _CODE_ITEMSIZE
                )
            except FileExistsError as error:
                last_error = error
                continue
            return cls(segment, node_count, owner=True)
        raise SimulationError(
            f"could not allocate a shared code buffer after "
            f"{MAX_NAME_ATTEMPTS} name attempts"
        ) from last_error

    @classmethod
    def attach(cls, name: str, node_count: int) -> "SharedCodeBuffer":
        """Attach to an existing segment by name (worker side, never unlinks)."""
        shared_memory = _require_shared_memory()
        segment = shared_memory.SharedMemory(name=name)
        return cls(segment, node_count, owner=False)

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #

    @property
    def name(self) -> str:
        """The segment name workers attach to."""
        return self._segment.name

    @property
    def array(self):
        """The ``int32`` numpy view over the shared segment."""
        if self._array is None:
            raise SimulationError("shared code buffer is closed")
        return self._array

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Release this process's mapping (the segment itself survives)."""
        if self._array is None:
            return
        # The numpy view exports the segment's memory; drop it before
        # closing or SharedMemory.close() raises BufferError.
        self._array = None
        self._segment.close()

    def unlink(self) -> None:
        """Destroy the segment (creator only; implies :meth:`close`)."""
        self.close()
        if not self._owner:
            return
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        try:
            self._segment.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover - already gone
            pass

    def __repr__(self) -> str:
        state = "closed" if self._array is None else "open"
        return (
            f"SharedCodeBuffer({self._segment.name!r}, {self.node_count} codes, "
            f"{state})"
        )
