"""Persistent shared-memory execution runtime — the ``shm`` engine tier.

The ``parallel`` tier (PR 4) made one observation: a round of a
non-vectorisable rule is an embarrassingly parallel scan.  But it re-forks
its worker pool every round, because ``fork`` inheritance was the cheapest
correct transport for arbitrary values — and at sides >= 1024 the ~25 ms
fork cost (plus pickling every round's results back) dominates exactly
where the paper's ``Θ(log* n)`` vs ``Θ(n)`` separation needs scale.  This
package removes that per-round cost: workers are spawned **once** per
simulation and labellings travel as ``int32`` code vectors (the array
tier's native representation, PR 3) through shared memory.

The subsystem has three layers:

* :class:`repro.runtime.buffers.SharedCodeBuffer` — one
  ``multiprocessing.shared_memory`` segment viewed as an ``int32`` numpy
  vector, with collision-safe name allocation, creator-only unlink and a
  finalizer + resource-tracker backstop against orphaned segments.
* :class:`repro.runtime.pool.WorkerPool` — the persistent pool.  At spawn
  time it warms the grid's index tables
  (:meth:`~repro.grid.indexer.GridIndexer.warm_ball_tables`), registers
  the rules it will run and forks its workers, which inherit tables,
  rules and a codec snapshot through copy-on-write memory — nothing is
  pickled.  It owns **two** buffers (the double buffer): every round
  reads one (``src``) and writes the other (``dst``), so workers may read
  any neighbour's value while writing only their own chunk, and a
  successful round just flips which buffer is "current".
* :class:`repro.local_model.engine.ShmEngine` — the fifth engine tier,
  selected with ``engine="shm"`` (or automatically by ``engine="auto"``
  above :data:`repro.local_model.store.SHM_AUTO_THRESHOLD` nodes).

Buffer/barrier protocol, in one round
-------------------------------------

::

    parent                                   worker i (of w)
    ------                                   ---------------
    export codes into buffers[src]
    delta = codec.labels_since(synced)
    send ("round", id, rule, src, dst,
          delta, reuse[, stats_rev])
          to every worker         ──────▶    codec.extend(delta)
                                             scan chunk [start_i, stop_i):
                                               gather codes from buffers[src]
                                               (reuse cached values when the
                                                parent granted ``reuse``)
                                               decode, rule.update(view)
                                               encode / overflow if unknown
                                               write codes to buffers[dst]
    barrier: wait for w replies   ◀──────    send ("ok", id, i, overflow
                                                   [, stats])
                                             or ("error", id, i, index, exc)
    any error → re-raise lowest index
    intern overflow, patch buffers[dst]
    current = dst  (the swap)
    merge codes out of buffers[dst]

The barrier is strict — no round ``k+1`` message is sent while a round
``k`` reply is outstanding — which is the whole synchronisation story:
within a round the two buffers split reads from writes, and across rounds
the barrier orders them.  Only task messages, codec deltas and overflow
labels ever cross the pipes; the O(n) payload stays in shared memory.
When a tracer is active the parent sets ``stats_rev`` to
:data:`repro.runtime.pool.PROTOCOL_REV` and rev-matching workers append a
small timing dict to their ``ok`` reply, which the parent merges into the
trace as per-worker ``worker-chunk`` spans; either side at a different
revision simply ignores the extra field.

Failure modes are deterministic: a raising rule reproduces the sequential
first-failing-node exception (lowest flat index wins, like the parallel
tier's merger) and leaves the pool healthy; a dead, hung (when a
``REPRO_ROUND_TIMEOUT`` deadline is configured) or corrupt worker raises
:class:`repro.runtime.pool.PoolBrokenError` and leaves the pool *broken
but healable*.  The engine first tries :meth:`WorkerPool.heal` — respawn
exactly the workers that did not finish the round, re-forked from the
parent's live codec, and retry the round on the same segments — bounded
by ``REPRO_POOL_RETRIES`` with backoff.  Only when healing is exhausted
(or itself fails) does the pool shut down (segments unlinked) and the
engine degrade with a one-time warning, never a wrong labelling — to
``parallel`` per-round forks after a pool-*spawn* failure, but straight
to the serial indexed scan after a worker died *mid-round* (the same
rule would kill fork workers too, and a fork pool hangs rather than
fails on abrupt worker death).  Every heal and every tier drop is also
recorded as a structured
:class:`repro.runtime.telemetry.DegradeEvent` on the engine.

All of these paths are exercised deterministically through the
fault-injection plane (:mod:`repro.runtime.faults`): a seedable
:class:`~repro.runtime.faults.FaultPlan` — installed programmatically or
via ``REPRO_FAULT_PLAN`` — kills, hangs or corrupts chosen workers at
chosen rounds and fails spawns/segment creation, with zero overhead when
no plan is active.
"""

from repro.runtime.buffers import SharedCodeBuffer, default_segment_names
from repro.runtime.faults import FaultPlan, WorkerFault
from repro.runtime.pool import PoolBrokenError, WorkerPool
from repro.runtime.telemetry import DegradeEvent

__all__ = [
    "DegradeEvent",
    "FaultPlan",
    "PoolBrokenError",
    "SharedCodeBuffer",
    "WorkerFault",
    "WorkerPool",
    "default_segment_names",
]
