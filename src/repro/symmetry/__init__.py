"""Symmetry-breaking substrates.

Everything with round complexity ``Θ(log* n)`` in the paper bottoms out in
the primitives of this package:

* Cole–Vishkin colour reduction on directed cycles (rows of the grid),
* Linial's colour reduction on general bounded-degree graphs (used on the
  power graphs ``G^(k)`` / ``G^[k]``),
* Kuhn–Wattenhofer batch colour reduction down to ``Δ + 1`` colours,
* greedy maximal independent sets from proper colourings — in particular
  the *anchor* sets ``S_k`` of the normal form,
* distance-``k`` colourings (Lemma 17), conflict colourings (Definition 6)
  and per-row ruling sets (used by the edge-colouring algorithm).
"""

from repro.symmetry.cole_vishkin import colour_directed_cycle, three_colour_rows
from repro.symmetry.fastpath import compute_mis_indexed
from repro.symmetry.linial import linial_colour_reduction
from repro.symmetry.reduction import (
    greedy_mis_from_colouring,
    reduce_colours_to,
)
from repro.symmetry.mis import AnchorSet, compute_anchors, compute_mis
from repro.symmetry.distance_colouring import distance_colouring
from repro.symmetry.conflict_colouring import (
    ConflictColouringInstance,
    solve_conflict_colouring,
)
from repro.symmetry.ruling_sets import row_ruling_set

__all__ = [
    "AnchorSet",
    "ConflictColouringInstance",
    "colour_directed_cycle",
    "compute_anchors",
    "compute_mis",
    "compute_mis_indexed",
    "distance_colouring",
    "greedy_mis_from_colouring",
    "linial_colour_reduction",
    "reduce_colours_to",
    "row_ruling_set",
    "solve_conflict_colouring",
    "three_colour_rows",
]
