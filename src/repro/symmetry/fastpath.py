"""Int-keyed fast path of the colour-reduction / MIS pipeline.

The reference pipeline (:mod:`repro.symmetry.linial`,
:mod:`repro.symmetry.reduction`, :func:`repro.symmetry.mis.compute_mis`)
operates on node-keyed adjacency mappings; on grids the keys are coordinate
tuples and every read pays a tuple hash.  The functions here run the very
same pipeline over *flat integer positions* — adjacency is a sequence of
index tuples (e.g. a :func:`repro.grid.indexer.cyclic_power_pattern`),
colours are a flat list — which is what the indexed consumers (row ruling
sets, j,k-independent sets) feed them.

The results are **decision-identical** to the reference pipeline, not just
equivalent:

* every phase of the pipeline is content-deterministic — within one colour
  class the nodes are pairwise non-adjacent, so their simultaneous updates
  never read each other and node iteration order cannot change any value;
* the cover-free point sets are shared with the reference implementation
  (:func:`repro.symmetry.linial.polynomial_point_set`), so the fast path
  iterates the very same frozensets and picks the same uncovered points.

The randomized equivalence harness (``tests/equivalence.py``) pins this:
both pipelines must produce byte-identical member sets, colourings and
round counts on randomized grids.

All functions require a **symmetric** adjacency (``j in adjacency[i]``
iff ``i in adjacency[j]``), which every producer in this repository —
cyclic power patterns, grid powers, conflict graphs — satisfies by
construction.  The greedy MIS phase propagates blocked flags along *out*
edges, which coincides with the reference's out-neighbour test only on
undirected graphs; feeding a directed adjacency is a contract violation,
not a supported input.

One genuinely new optimisation lives here: when the graph is *complete*
(which every row power with ``spacing >= (length - 1) / 2`` is — the common
case for j,k-independent sets), a Linial step is computed from a global
point-occurrence count instead of per-node neighbour scans, turning the
``O(n² · q)`` membership scan into ``O(n · q)``.  The chosen points are
provably the same: in a complete graph a point is uncovered for a node
exactly when no other node's set contains it, i.e. when its global count
is 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from repro.errors import SimulationError
from repro.symmetry.linial import (
    _choose_parameters,
    polynomial_point_mask,
    polynomial_point_set,
)

IndexAdjacency = Sequence[Sequence[int]]


@dataclass
class IndexedMISComputation:
    """An MIS over flat positions plus the per-phase round breakdown."""

    members: Tuple[int, ...]
    rounds: int
    phase_rounds: Dict[str, int] = field(default_factory=dict)


def linial_step_indexed(
    adjacency: IndexAdjacency, colours: Sequence[int], max_degree: int
) -> List[int]:
    """Mirror of :func:`repro.symmetry.linial.linial_step` on flat positions."""
    palette_size = max(colours) + 1
    degree, q = _choose_parameters(palette_size, max_degree)
    point_sets = {
        colour: polynomial_point_set(colour, degree, q) for colour in set(colours)
    }

    count = len(colours)
    if count > 1 and all(len(neighbours) == count - 1 for neighbours in adjacency):
        # Complete graph: a point is uncovered by the neighbours (= all other
        # nodes) exactly when only one node's set contains it.  A proper
        # colouring of a complete graph has all-distinct colours, so node
        # sets and colour sets coincide, and the set of multiply-covered
        # points falls out of C-level big-integer bitmask algebra.
        seen_mask = 0
        duplicated_mask = 0
        for colour in colours:
            mask = polynomial_point_mask(colour, degree, q)
            duplicated_mask |= seen_mask & mask
            seen_mask |= mask
        new_colours: List[int] = []
        for colour in colours:
            chosen = None
            for point in point_sets[colour]:
                if not (duplicated_mask >> point) & 1:
                    chosen = point
                    break
            if chosen is None:
                raise SimulationError(
                    "Linial step failed to find an uncovered point; "
                    "the input colouring is probably not proper"
                )
            new_colours.append(chosen)
        return new_colours

    new_colours = []
    for position, neighbours in enumerate(adjacency):
        own_points = point_sets[colours[position]]
        neighbour_sets = [point_sets[colours[n]] for n in neighbours]
        chosen = None
        for point in own_points:
            if all(point not in other for other in neighbour_sets):
                chosen = point
                break
        if chosen is None:
            raise SimulationError(
                "Linial step failed to find an uncovered point; "
                "the input colouring is probably not proper"
            )
        new_colours.append(chosen)
    return new_colours


def linial_reduction_indexed(
    adjacency: IndexAdjacency,
    initial_colours: Sequence[int],
    max_degree: int,
    max_rounds: int = 64,
) -> Tuple[List[int], int]:
    """Mirror of :func:`repro.symmetry.linial.linial_colour_reduction`.

    Returns ``(colours, rounds)``; the stopping rule (palette stops
    shrinking) is identical to the reference.
    """
    colours = list(initial_colours)
    palette = max(colours) + 1
    rounds = 0
    while rounds < max_rounds:
        candidate = linial_step_indexed(adjacency, colours, max_degree)
        new_palette = max(candidate) + 1
        if new_palette >= palette:
            break
        colours = candidate
        palette = new_palette
        rounds += 1
    return colours, rounds


def _normalise_palette_indexed(colours: List[int]) -> List[int]:
    """Rename colours to ``0..m-1`` preserving order (reference semantics)."""
    rename = {colour: index for index, colour in enumerate(sorted(set(colours)))}
    return [rename[colour] for colour in colours]


def reduce_colours_indexed(
    adjacency: IndexAdjacency, colours: Sequence[int], target: int = 0
) -> Tuple[List[int], int]:
    """Mirror of :func:`repro.symmetry.reduction.reduce_colours_to`.

    Returns ``(colours, rounds)`` with the same Kuhn–Wattenhofer schedule
    and the same round accounting as the reference.
    """
    degree = max((len(neighbours) for neighbours in adjacency), default=0)
    if target <= 0:
        target = degree + 1
    if target < degree + 1:
        raise SimulationError(
            f"cannot reduce to {target} colours on a graph of maximum degree {degree}"
        )

    count = len(colours)
    current = _normalise_palette_indexed(list(colours))
    palette = max(current) + 1 if current else 0
    rounds = 0
    while palette > target:
        group_size = 2 * target
        group_count = -(-palette // group_size)
        new_colours: List[int] = [0] * count
        removed_classes = 0
        for group_index in range(group_count):
            low = group_index * group_size
            high = min(low + group_size, palette)
            group_nodes = [i for i in range(count) if low <= current[i] < high]
            base = group_index * target
            group_current = {i: current[i] - low for i in group_nodes}
            removed_here = 0
            for colour_to_remove in range(target, high - low):
                for position in group_nodes:
                    if group_current[position] != colour_to_remove:
                        continue
                    taken: Set[int] = set()
                    for neighbour in adjacency[position]:
                        if neighbour in group_current:
                            taken.add(group_current[neighbour])
                    group_current[position] = next(
                        c for c in range(target) if c not in taken
                    )
                removed_here += 1
            removed_classes = max(removed_classes, removed_here)
            for position in group_nodes:
                new_colours[position] = base + group_current[position]
        rounds += removed_classes
        current = _normalise_palette_indexed(new_colours)
        palette = max(current) + 1
    return current, rounds


def greedy_mis_indexed(
    adjacency: IndexAdjacency, colours: Sequence[int]
) -> Tuple[Tuple[int, ...], int]:
    """Mirror of :func:`repro.symmetry.reduction.greedy_mis_from_colouring`.

    Returns ``(member positions, rounds)``.  The adjacency must be
    *symmetric* (see the module docstring): the blocked-flag propagation
    marks the out-neighbours of every joiner, which equals the reference's
    "some of my out-neighbours joined" test only on undirected graphs.
    """
    classes: Dict[int, List[int]] = {}
    for position, colour in enumerate(colours):
        classes.setdefault(colour, []).append(position)
    in_set = [False] * len(colours)
    # A node is blocked exactly when some neighbour has already joined;
    # propagating the flag on join replaces the reference's per-node
    # neighbour scan without changing any decision.
    blocked = [False] * len(colours)
    rounds = 0
    for colour in sorted(classes):
        for position in classes[colour]:
            if not blocked[position]:
                in_set[position] = True
                for neighbour in adjacency[position]:
                    blocked[neighbour] = True
        rounds += 1
    members = tuple(position for position, member in enumerate(in_set) if member)
    return members, rounds


def compute_mis_indexed(
    adjacency: IndexAdjacency,
    initial_colours: Sequence[int],
    max_degree: int = 0,
) -> IndexedMISComputation:
    """Mirror of :func:`repro.symmetry.mis.compute_mis` on flat positions."""
    if max_degree <= 0:
        max_degree = max((len(neighbours) for neighbours in adjacency), default=0)
    linial_colours, linial_rounds = linial_reduction_indexed(
        adjacency, initial_colours, max_degree
    )
    reduced_colours, reduction_rounds = reduce_colours_indexed(
        adjacency, linial_colours
    )
    members, mis_rounds = greedy_mis_indexed(adjacency, reduced_colours)
    phase_rounds = {
        "linial": linial_rounds,
        "batch-reduction": reduction_rounds,
        "greedy-mis": mis_rounds,
    }
    return IndexedMISComputation(
        members=members,
        rounds=sum(phase_rounds.values()),
        phase_rounds=phase_rounds,
    )
