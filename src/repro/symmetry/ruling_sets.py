"""Per-row ruling sets (one-dimensional maximal independent sets of powers).

Section 10's edge-colouring algorithm starts by computing, in every row of
every dimension, a maximal independent set of large distance — that is, an
MIS of the ``spacing``-th power of the row, viewed as a directed cycle.
Members of such a set are pairwise more than ``spacing`` apart along the
row, and every row node has a member within ``spacing`` hops.

Rows are independent cycles, so all of them are processed in parallel; the
round count is the maximum over the rows times the ``spacing`` simulation
overhead of working on the row power.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.grid.identifiers import IdentifierAssignment
from repro.grid.indexer import GridIndexer, cyclic_power_pattern
from repro.grid.torus import Node, ToroidalGrid
from repro.local_model.store import resolve_engine
from repro.symmetry.fastpath import compute_mis_indexed
from repro.symmetry.mis import compute_mis


@dataclass
class RowRulingSet:
    """Union of per-row distance-``spacing`` MIS, with round accounting."""

    members: Set[Node]
    axis: int
    spacing: int
    rounds: int
    phase_rounds: Dict[str, int] = field(default_factory=dict)


def _row_power_adjacency(row: List[Node], spacing: int) -> Dict[Node, List[Node]]:
    """Adjacency of the ``spacing``-th power of a row (a cycle of nodes)."""
    length = len(row)
    adjacency: Dict[Node, List[Node]] = {}
    for index, node in enumerate(row):
        neighbours = []
        for delta in range(1, spacing + 1):
            neighbours.append(row[(index + delta) % length])
            neighbours.append(row[(index - delta) % length])
        # On very short rows the power may wrap onto the node itself or
        # produce duplicates; clean both up.
        unique = []
        seen = {node}
        for neighbour in neighbours:
            if neighbour not in seen:
                seen.add(neighbour)
                unique.append(neighbour)
        adjacency[node] = unique
    return adjacency


def row_ruling_set(
    grid: ToroidalGrid,
    identifiers: IdentifierAssignment,
    axis: int,
    spacing: int,
    engine: str = "indexed",
) -> RowRulingSet:
    """Compute a distance-``spacing`` MIS inside every row along ``axis``.

    The result is the union over all rows; members in *different* rows are
    unrelated (they may be arbitrarily close), which is exactly the starting
    point of the j,k-independent-set construction of Definition 18.

    ``engine`` selects the execution path: ``"indexed"`` (default) runs the
    int-keyed pipeline over the indexer's axis-row gather tables and the
    shared cyclic power pattern; ``"dict"`` is the per-row tuple-keyed
    reference.  Both produce byte-identical results (pinned by the
    randomized equivalence harness).
    """
    engine = resolve_engine(engine, allowed=("dict", "indexed"))
    members: Set[Node] = set()
    worst_rounds = 0
    worst_phases: Dict[str, int] = {}
    if engine == "indexed":
        indexer = GridIndexer.for_grid(grid)
        for row in indexer.row_node_table(axis):
            pattern = cyclic_power_pattern(len(row), spacing)
            colours = [identifiers[node] for node in row]
            computation = compute_mis_indexed(pattern, colours, max_degree=2 * spacing)
            members.update(row[position] for position in computation.members)
            if computation.rounds > worst_rounds:
                worst_rounds = computation.rounds
                worst_phases = computation.phase_rounds
    else:
        for row in grid.rows(axis):
            adjacency = _row_power_adjacency(row, spacing)
            initial = {node: identifiers[node] for node in row}
            computation = compute_mis(adjacency, initial, max_degree=2 * spacing)
            members.update(computation.members)
            if computation.rounds > worst_rounds:
                worst_rounds = computation.rounds
                worst_phases = computation.phase_rounds
    overhead = spacing
    return RowRulingSet(
        members=members,
        axis=axis,
        spacing=spacing,
        rounds=worst_rounds * overhead,
        phase_rounds={phase: rounds * overhead for phase, rounds in worst_phases.items()},
    )
