"""Distance-``k`` vertex colourings (Lemma 17 of the paper).

A *colouring of L-infinity distance* ``k`` assigns colours so that no two
distinct nodes within L-infinity distance ``k`` share a colour; equivalently
it is a proper colouring of the power graph ``G^[k]``.  Lemma 17 shows such
a colouring with ``(2k+1)^d`` colours can be found in
``O(k (log* n + k^d))`` rounds; we realise it with the same Linial +
batch-reduction pipeline used for the anchor sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.grid.identifiers import IdentifierAssignment
from repro.grid.power import PowerGraph
from repro.grid.torus import Node, ToroidalGrid
from repro.symmetry.linial import linial_colour_reduction
from repro.symmetry.reduction import reduce_colours_to


@dataclass
class DistanceColouring:
    """A colouring of L-infinity distance ``k`` with its round cost."""

    colours: Dict[Node, int]
    k: int
    palette_size: int
    rounds: int
    phase_rounds: Dict[str, int] = field(default_factory=dict)


def distance_colouring(
    grid: ToroidalGrid,
    identifiers: IdentifierAssignment,
    k: int,
) -> DistanceColouring:
    """Colour the grid so that nodes within L-infinity distance ``k`` differ.

    The palette has at most ``(2k+1)^d`` colours, matching Lemma 17.  The
    round count includes the ``k·d`` simulation overhead of running on
    ``G^[k]``.
    """
    power = PowerGraph(grid, k, norm="linf")
    adjacency = power.adjacency()
    initial = {node: identifiers[node] for node in grid.nodes()}
    linial = linial_colour_reduction(adjacency, initial, max_degree=power.max_degree())
    reduced = reduce_colours_to(adjacency, linial.colours)
    overhead = power.simulation_overhead()
    phase_rounds = {
        "linial": linial.rounds * overhead,
        "batch-reduction": reduced.rounds * overhead,
    }
    return DistanceColouring(
        colours=reduced.colours,
        k=k,
        palette_size=reduced.palette_size,
        rounds=sum(phase_rounds.values()),
        phase_rounds=phase_rounds,
    )
