"""Cole–Vishkin colour reduction on directed cycles.

Cole and Vishkin showed that a directed cycle with unique identifiers can be
3-coloured in ``O(log* n)`` synchronous rounds; Linial proved this is
optimal.  On the oriented grid every row (in each dimension) is a directed
cycle, so this primitive is the work-horse behind the row-wise constructions
of Sections 9 and 10 and behind the one-dimensional warm-up of Section 4.

The implementation follows the textbook algorithm:

1. Start with the unique identifiers as colours (a proper colouring).
2. Repeat the bit-trick step — the new colour is ``2 * i + b`` where ``i``
   is the lowest bit position in which the node's colour differs from its
   predecessor's colour and ``b`` is the node's bit at that position — until
   all colours are below 6.  Each step costs one round.
3. Shift down colours 5, 4, 3 one at a time (three rounds): a node with the
   colour being removed picks the smallest colour of ``{0, 1, 2}`` not used
   by its two neighbours.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import SimulationError
from repro.grid.identifiers import IdentifierAssignment
from repro.grid.indexer import GridIndexer
from repro.grid.torus import Direction, Node, ToroidalGrid


@dataclass
class CycleColouring:
    """Result of colouring a directed cycle: colours (by position) and rounds."""

    colours: List[int]
    rounds: int


def _lowest_differing_bit(a: int, b: int) -> int:
    """Index of the lowest bit in which ``a`` and ``b`` differ (they must differ)."""
    if a == b:
        raise SimulationError("Cole-Vishkin step applied to equal colours")
    difference = a ^ b
    return (difference & -difference).bit_length() - 1


def _cole_vishkin_step(colours: Sequence[int]) -> List[int]:
    """One synchronous Cole–Vishkin step on a directed cycle.

    ``colours[i]``'s predecessor is ``colours[i - 1]`` (cyclically); the new
    colour encodes the position and value of the lowest differing bit.
    """
    length = len(colours)
    new_colours = []
    for index in range(length):
        own = colours[index]
        predecessor = colours[(index - 1) % length]
        bit_index = _lowest_differing_bit(own, predecessor)
        bit_value = (own >> bit_index) & 1
        new_colours.append(2 * bit_index + bit_value)
    return new_colours


def _shift_down(colours: Sequence[int]) -> Tuple[List[int], int]:
    """Remove colours 5, 4 and 3 in three rounds, producing a 3-colouring."""
    current = list(colours)
    length = len(current)
    rounds = 0
    for colour_to_remove in (5, 4, 3):
        next_colours = list(current)
        for index in range(length):
            if current[index] == colour_to_remove:
                forbidden = {current[(index - 1) % length], current[(index + 1) % length]}
                next_colours[index] = min(c for c in (0, 1, 2) if c not in forbidden)
        current = next_colours
        rounds += 1
    return current, rounds


def colour_directed_cycle(identifiers: Sequence[int], max_iterations: int = 64) -> CycleColouring:
    """3-colour a directed cycle given by its sequence of unique identifiers.

    ``identifiers[i]``'s successor is ``identifiers[(i + 1) % n]``.  The
    cycle must have at least three nodes.  The returned round count is the
    number of Cole–Vishkin iterations plus the three shift-down rounds.
    """
    length = len(identifiers)
    if length < 3:
        raise SimulationError("a cycle needs at least three nodes")
    if len(set(identifiers)) != length:
        raise SimulationError("identifiers on the cycle must be unique")

    colours = list(identifiers)
    rounds = 0
    while max(colours) > 5:
        colours = _cole_vishkin_step(colours)
        rounds += 1
        if rounds > max_iterations:
            raise SimulationError("Cole-Vishkin did not converge; identifiers may be invalid")
    final_colours, shift_rounds = _shift_down(colours)
    return CycleColouring(colours=final_colours, rounds=rounds + shift_rounds)


def three_colour_rows(
    grid: ToroidalGrid,
    identifiers: IdentifierAssignment,
    axis: int,
) -> Tuple[Dict[Node, int], int]:
    """3-colour every row of the grid along ``axis`` in parallel.

    Each row is an independent directed cycle (oriented towards increasing
    coordinates); all rows run Cole–Vishkin simultaneously, so the round
    cost is the maximum over the rows.

    Rows and identifiers are resolved through the grid's
    :class:`repro.grid.indexer.GridIndexer`, so repeated sweeps over the
    same grid reuse the precomputed row tables instead of re-materialising
    coordinate tuples.
    """
    indexer = GridIndexer.for_grid(grid)
    id_values = indexer.to_values(identifiers)
    nodes = indexer.nodes
    colouring: Dict[Node, int] = {}
    rounds = 0
    for row in indexer.rows(axis):
        row_ids = [id_values[position] for position in row]
        result = colour_directed_cycle(row_ids)
        for position, colour in zip(row, result.colours):
            colouring[nodes[position]] = colour
        rounds = max(rounds, result.rounds)
    return colouring, rounds


def greedy_cycle_mis(colours: Sequence[int]) -> Tuple[List[int], int]:
    """Maximal independent set of a cycle from a proper colouring.

    Processes colour classes in increasing order; a node joins if none of
    its two neighbours has joined yet.  Returns the 0/1 membership list and
    the number of rounds (one per colour class).
    """
    length = len(colours)
    membership = [0] * length
    distinct = sorted(set(colours))
    for colour in distinct:
        for index in range(length):
            if colours[index] != colour:
                continue
            left = membership[(index - 1) % length]
            right = membership[(index + 1) % length]
            if not left and not right:
                membership[index] = 1
    return membership, len(distinct)
