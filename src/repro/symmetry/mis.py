"""Maximal independent sets on grids and their power graphs ("anchors").

The normal form ``A' ∘ S_k`` of the paper uses a problem-independent
component ``S_k`` that computes a maximal independent set in the k-th power
``G^(k)`` of the grid; the members of that set are called *anchors*.  The
same machinery, applied to the L-infinity power ``G^[ℓ]``, provides the
anchor sets of the 4-colouring algorithm of Section 8.

The distributed pipeline is the standard one:

1. Linial colour reduction starting from the unique identifiers
   (``O(log* n)`` rounds, palette ``O(Δ² log Δ)``),
2. Kuhn–Wattenhofer batch reduction to ``Δ + 1`` colours
   (``O(Δ log(m / Δ))`` rounds, independent of ``n`` once step 1 is done),
3. greedy MIS by colour classes (``Δ + 1`` rounds).

Running on a power graph multiplies the round count by the simulation
overhead (``k`` for ``G^(k)``, ``k·d`` for ``G^[k]``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Mapping, Sequence, Set

from repro.grid.identifiers import IdentifierAssignment
from repro.grid.indexer import GridIndexer
from repro.grid.power import PowerGraph
from repro.grid.torus import Node, ToroidalGrid
from repro.symmetry.linial import linial_colour_reduction
from repro.symmetry.reduction import greedy_mis_from_colouring, reduce_colours_to

NodeKey = Hashable
Adjacency = Mapping[NodeKey, Sequence[NodeKey]]


@dataclass
class MISComputation:
    """An MIS of an abstract graph plus the per-phase round breakdown."""

    members: Set[NodeKey]
    rounds: int
    phase_rounds: Dict[str, int] = field(default_factory=dict)


@dataclass
class AnchorSet:
    """An anchor set: a maximal independent set in a power of the grid."""

    members: Set[Node]
    k: int
    norm: str
    rounds: int
    phase_rounds: Dict[str, int] = field(default_factory=dict)

    def is_anchor(self, node: Node) -> bool:
        """Return True if ``node`` belongs to the anchor set."""
        return node in self.members

    def indicator(self, grid: ToroidalGrid) -> Dict[Node, int]:
        """Return the 0/1 anchor-indicator labelling of all grid nodes."""
        return {node: 1 if node in self.members else 0 for node in grid.nodes()}


def compute_mis(
    adjacency: Adjacency,
    initial_colours: Mapping[NodeKey, int],
    max_degree: int = 0,
) -> MISComputation:
    """Compute a maximal independent set of an abstract graph.

    ``initial_colours`` must be a proper colouring (unique identifiers are
    always suitable).  The returned round count is the sum of the three
    pipeline phases and refers to rounds *on the given graph*.
    """
    linial = linial_colour_reduction(adjacency, initial_colours, max_degree=max_degree)
    reduced = reduce_colours_to(adjacency, linial.colours)
    mis = greedy_mis_from_colouring(adjacency, reduced.colours)
    phase_rounds = {
        "linial": linial.rounds,
        "batch-reduction": reduced.rounds,
        "greedy-mis": mis.rounds,
    }
    total = sum(phase_rounds.values())
    return MISComputation(members=mis.members, rounds=total, phase_rounds=phase_rounds)


def compute_anchors(
    grid: ToroidalGrid,
    identifiers: IdentifierAssignment,
    k: int,
    norm: str = "l1",
) -> AnchorSet:
    """Compute the anchor set ``S_k``: a maximal independent set in a grid power.

    Parameters
    ----------
    grid:
        The toroidal grid.
    identifiers:
        Unique identifiers of the nodes.
    k:
        The power.  ``norm="l1"`` gives an MIS of ``G^(k)`` (anchors of the
        normal form); ``norm="linf"`` gives an MIS of ``G^[k]`` (Section 8).
    """
    power = PowerGraph(grid, k, norm)
    # The indexed fast path produces exactly power.adjacency() — same
    # neighbour order, wrap-around duplicates removed — from precomputed
    # offset tables instead of per-node shift calls.
    adjacency = GridIndexer.for_grid(grid).power_adjacency(k, norm)
    initial = {node: identifiers[node] for node in grid.nodes()}
    computation = compute_mis(adjacency, initial, max_degree=power.max_degree())
    overhead = power.simulation_overhead()
    phase_rounds = {
        phase: rounds * overhead for phase, rounds in computation.phase_rounds.items()
    }
    return AnchorSet(
        members=computation.members,
        k=k,
        norm=norm,
        rounds=computation.rounds * overhead,
        phase_rounds=phase_rounds,
    )
