"""Linial's colour reduction on general bounded-degree graphs.

Linial's classic algorithm reduces a proper ``m``-colouring of a graph of
maximum degree ``Δ`` to a proper ``O(Δ² log m)``-colouring in a *single*
communication round, using a ``Δ``-cover-free family of sets.  Iterating the
step ``O(log* m)`` times reaches a colouring with ``O(Δ² log Δ)`` colours.
Starting from the unique identifiers this gives the ``O(log* n)``-round
symmetry breaking needed on the power graphs ``G^(k)`` and ``G^[k]``.

The cover-free family is the standard polynomial construction: colour ``i``
is mapped to a polynomial ``p_i`` of degree at most ``deg`` over the finite
field ``F_q`` (its coefficients are the base-``q`` digits of ``i``), and the
set associated with ``i`` is ``S_i = {(x, p_i(x)) : x ∈ F_q}``.  Two
distinct polynomials agree on at most ``deg`` points, so as long as
``q > Δ · deg`` a node can always find an element of its own set not covered
by the sets of its at most ``Δ`` neighbours; that element (encoded as the
integer ``x * q + p_i(x) < q²``) is the node's new colour.

The functions here are generic: they operate on explicit adjacency mappings,
so the same code serves grids, their power graphs, rows (cycles) and the
anchor conflict graphs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, FrozenSet, Hashable, List, Mapping, Sequence, Tuple

from repro.errors import SimulationError
from repro.utils.math import next_prime

NodeKey = Hashable
Adjacency = Mapping[NodeKey, Sequence[NodeKey]]


@dataclass
class ColourReductionResult:
    """A proper colouring together with the rounds spent producing it."""

    colours: Dict[NodeKey, int]
    rounds: int
    palette_size: int
    history: List[int] = field(default_factory=list)


def _max_degree(adjacency: Adjacency) -> int:
    return max((len(neighbours) for neighbours in adjacency.values()), default=0)


def _choose_parameters(palette_size: int, max_degree: int) -> Tuple[int, int]:
    """Choose the polynomial degree and field size for one Linial step.

    Returns ``(degree, q)`` with ``q`` prime, ``q > max_degree * degree``
    and ``q ** (degree + 1) >= palette_size`` (so that every current colour
    has its own polynomial), minimising the resulting palette ``q²``.
    """
    best: Tuple[int, int] = (0, 0)
    best_palette = None
    for degree in range(1, 12):
        # q must exceed Δ·degree and satisfy q^(degree+1) >= palette_size.
        lower_bound = max(max_degree * degree + 1, 2)
        q = next_prime(lower_bound)
        while q ** (degree + 1) < palette_size:
            q = next_prime(q + 1)
        palette = q * q
        if best_palette is None or palette < best_palette:
            best_palette = palette
            best = (degree, q)
    return best


def _polynomial_digits(value: int, degree: int, q: int) -> List[int]:
    """Base-``q`` digits of ``value`` (length ``degree + 1``, low digit first)."""
    digits = []
    for _ in range(degree + 1):
        digits.append(value % q)
        value //= q
    return digits


@lru_cache(maxsize=1 << 16)
def polynomial_point_set(colour: int, degree: int, q: int) -> FrozenSet[int]:
    """The cover-free point set ``{x·q + p_colour(x) : x ∈ F_q}``.

    This is the inner loop of every Linial step.  The set depends only on
    ``(colour, degree, q)``, so it is cached process-wide — sweeps over many
    rows or grids that land on the same field parameters share the tables,
    exactly as the grid indexer shares its ball tables.  Both the dict-based
    reference pipeline and the int-keyed fast path call this function, so
    they iterate the very same frozensets (same contents, same insertion
    sequence, hence the same iteration order) and break ties identically.
    """
    digits = _polynomial_digits(colour, degree, q)
    digits.reverse()  # Horner evaluation wants the high coefficient first.
    points = []
    for x in range(q):
        value = 0
        for coefficient in digits:
            value = (value * x + coefficient) % q
        points.append(x * q + value)
    return frozenset(points)


@lru_cache(maxsize=1 << 15)
def polynomial_point_mask(colour: int, degree: int, q: int) -> int:
    """The point set of :func:`polynomial_point_set` as an integer bitmask.

    Bit ``p`` is set exactly when ``p`` is in the point set.  Bitmasks make
    whole-set operations (union, intersection, duplicate detection) single
    C-level big-integer operations; the int-keyed fast path uses them to
    find globally uncovered points without per-point bookkeeping.
    """
    buffer = bytearray((q * q + 7) // 8)
    for point in polynomial_point_set(colour, degree, q):
        buffer[point >> 3] |= 1 << (point & 7)
    return int.from_bytes(buffer, "little")


def linial_step(
    adjacency: Adjacency,
    colours: Mapping[NodeKey, int],
    max_degree: int,
) -> Dict[NodeKey, int]:
    """One round of Linial colour reduction.

    The input colouring must be proper.  The output colouring is proper and
    uses at most ``q²`` colours, where ``q`` is the field size chosen by
    :func:`_choose_parameters` for the current palette.
    """
    palette_size = max(colours.values()) + 1
    degree, q = _choose_parameters(palette_size, max_degree)

    # For every colour in use, the point set of its polynomial; nodes
    # sharing a colour share the (cached) set.
    point_sets: Dict[int, frozenset] = {
        colour: polynomial_point_set(colour, degree, q)
        for colour in set(colours.values())
    }

    new_colours: Dict[NodeKey, int] = {}
    for node, neighbours in adjacency.items():
        own_points = point_sets[colours[node]]
        neighbour_sets = [point_sets[colours[neighbour]] for neighbour in neighbours]
        chosen = None
        for point in own_points:
            if all(point not in other for other in neighbour_sets):
                chosen = point
                break
        if chosen is None:
            raise SimulationError(
                "Linial step failed to find an uncovered point; "
                "the input colouring is probably not proper"
            )
        new_colours[node] = chosen
    return new_colours


def linial_colour_reduction(
    adjacency: Adjacency,
    initial_colours: Mapping[NodeKey, int],
    max_degree: int = 0,
    max_rounds: int = 64,
) -> ColourReductionResult:
    """Iterate Linial's step until the palette stops shrinking.

    ``initial_colours`` is typically the unique-identifier assignment (any
    injective map is a proper colouring).  The iteration stops as soon as a
    step no longer strictly decreases the palette size; at that point the
    palette has size ``O(Δ² log Δ)`` and further progress requires the
    slower one-colour-per-round or batch reductions of
    :mod:`repro.symmetry.reduction`.
    """
    if not adjacency:
        return ColourReductionResult(colours={}, rounds=0, palette_size=0)
    degree = max_degree if max_degree > 0 else _max_degree(adjacency)
    colours = dict(initial_colours)
    palette = max(colours.values()) + 1
    history = [palette]
    rounds = 0
    while rounds < max_rounds:
        candidate = linial_step(adjacency, colours, degree)
        new_palette = max(candidate.values()) + 1
        if new_palette >= palette:
            break
        colours = candidate
        palette = new_palette
        history.append(palette)
        rounds += 1
    return ColourReductionResult(
        colours=colours, rounds=rounds, palette_size=palette, history=history
    )


def verify_proper_colouring_map(adjacency: Adjacency, colours: Mapping[NodeKey, int]) -> bool:
    """Return True if no edge of ``adjacency`` is monochromatic."""
    for node, neighbours in adjacency.items():
        for neighbour in neighbours:
            if colours[node] == colours[neighbour]:
                return False
    return True
