"""Conflict colouring (Definition 6 of the paper) and its greedy solver.

A conflict-colouring instance consists of a graph, a list of available
colours per node and, for every edge, a set of forbidden colour pairs.  The
instance is an ``(ℓ, d)``-conflict colouring if every list has at least
``ℓ`` colours and for every edge each colour of one endpoint forbids at most
``d`` colours of the other endpoint.  Fraigniaud, Heinrich and Kosowski give
a sophisticated distributed algorithm; the paper observes (proof of
Theorem 4) that a simple greedy over the classes of a proper colouring of
the conflict graph suffices whenever ``ℓ / d > Δ``, and that is what we
implement.  The radii assignment of the 4-colouring algorithm is exactly
such an instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import InvalidProblemError, SimulationError
from repro.local_model.store import resolve_vector_engine

NodeKey = Hashable
Colour = int


@dataclass
class ConflictColouringInstance:
    """A conflict-colouring instance.

    Attributes
    ----------
    adjacency:
        The conflict graph: only adjacent nodes can constrain each other.
    available:
        The list of available colours for every node.
    forbidden:
        Predicate ``forbidden(u, v, cu, cv)`` returning True when assigning
        colour ``cu`` to ``u`` and ``cv`` to ``v`` is disallowed for the
        edge ``{u, v}``.  It is called with both orientations.
    """

    adjacency: Mapping[NodeKey, Sequence[NodeKey]]
    available: Mapping[NodeKey, Sequence[Colour]]
    forbidden: Callable[[NodeKey, NodeKey, Colour, Colour], bool]

    def validate_lists(self) -> None:
        """Check that every node the conflict graph mentions has a list.

        Raises :class:`repro.errors.InvalidProblemError` naming the first
        node (endpoint or referenced neighbour) that ``available`` does not
        cover, instead of letting a bare ``KeyError`` escape from the
        middle of a degree computation.
        """
        for node, neighbours in self.adjacency.items():
            if node not in self.available:
                raise InvalidProblemError(
                    f"conflict-colouring instance has no colour list for node "
                    f"{node!r}"
                )
            for neighbour in neighbours:
                if neighbour not in self.available:
                    raise InvalidProblemError(
                        f"conflict-colouring instance has no colour list for "
                        f"node {neighbour!r} (a neighbour of {node!r})"
                    )

    def list_size(self) -> int:
        """Return the smallest list length ``ℓ`` of the instance."""
        self.validate_lists()
        return min((len(colours) for colours in self.available.values()), default=0)

    def max_conflict_degree(self) -> int:
        """Return an upper bound on the defect ``d`` of the instance.

        Computed by explicit counting: for every edge and every colour of
        one endpoint, how many colours of the other endpoint it forbids.
        """
        self.validate_lists()
        worst = 0
        for node, neighbours in self.adjacency.items():
            for neighbour in neighbours:
                for own_colour in self.available[node]:
                    conflicts = sum(
                        1
                        for other_colour in self.available[neighbour]
                        if self.forbidden(node, neighbour, own_colour, other_colour)
                    )
                    worst = max(worst, conflicts)
        return worst


@dataclass
class ConflictColouringResult:
    """A feasible assignment of colours plus the rounds spent."""

    assignment: Dict[NodeKey, Colour]
    rounds: int
    metadata: Dict[str, int] = field(default_factory=dict)


def solve_conflict_colouring(
    instance: ConflictColouringInstance,
    schedule_colours: Mapping[NodeKey, int],
    engine: str = "auto",
) -> ConflictColouringResult:
    """Solve a conflict-colouring instance greedily.

    ``schedule_colours`` must be a proper colouring of the conflict graph;
    the nodes of one class choose simultaneously (one round per class) a
    colour from their list that conflicts with none of the already-fixed
    neighbours.  Both requirements are validated up front and violations
    raise :class:`repro.errors.InvalidProblemError` naming the offending
    node or edge: a node without a schedule colour cannot be placed in any
    round, and two adjacent nodes sharing a class would silently degrade
    the "simultaneous" choice of that class into a sequential greedy —
    the round count and the conflict guarantees of the paper's argument
    both assume properness.  If some node runs out of options a
    :class:`repro.errors.SimulationError` is raised — the caller is expected
    to retry with a larger list (larger ``ℓ``), mirroring how the paper's
    constants guarantee feasibility.

    ``engine`` selects the execution path of the schedule rounds, pinned
    byte-identical (assignments, round counts and exceptions) by the
    randomized equivalence suite: ``"dict"``/``"indexed"`` run the
    per-node greedy above; ``"array"`` evaluates each schedule class as
    one batch — every node of the class reads only the previous rounds'
    assignments and the class commits together, making the rounds'
    "simultaneous" semantics structural rather than incidental — while
    keeping the greedy's exact short-circuiting predicate call sequence,
    so even raising or partial predicates stay byte-identical.
    (Vectorising the predicate over the colour-list axis was measured and
    rejected: realistic lists hold a few dozen colours at most and the
    scalar scan's early exits beat numpy's per-call overhead at every
    size tried — see the ROADMAP note.)  ``"auto"`` resolves to the
    fastest available tier.
    """
    engine = resolve_vector_engine(engine)
    instance.validate_lists()
    for node in instance.adjacency:
        if node not in schedule_colours:
            raise InvalidProblemError(
                f"schedule colouring is missing node {node!r} of the conflict "
                "graph"
            )
    for node, neighbours in instance.adjacency.items():
        for neighbour in neighbours:
            if (
                neighbour in schedule_colours
                and neighbour != node
                and schedule_colours[neighbour] == schedule_colours[node]
            ):
                raise InvalidProblemError(
                    f"schedule colouring is not proper: adjacent nodes "
                    f"{node!r} and {neighbour!r} share class "
                    f"{schedule_colours[node]!r}"
                )
    classes: Dict[int, List[NodeKey]] = {}
    for node in instance.adjacency:
        classes.setdefault(schedule_colours[node], []).append(node)

    if engine == "array":
        return _solve_rounds_array(instance, classes)

    assignment: Dict[NodeKey, Colour] = {}
    rounds = 0
    for schedule_class in sorted(classes):
        for node in classes[schedule_class]:
            choice: Optional[Colour] = None
            for colour in instance.available[node]:
                ok = True
                for neighbour in instance.adjacency[node]:
                    if neighbour not in assignment:
                        continue
                    if instance.forbidden(node, neighbour, colour, assignment[neighbour]):
                        ok = False
                        break
                    if instance.forbidden(neighbour, node, assignment[neighbour], colour):
                        ok = False
                        break
                if ok:
                    choice = colour
                    break
            if choice is None:
                raise SimulationError(
                    f"greedy conflict colouring failed at node {node!r}: "
                    "no available colour is conflict-free (increase the list size)"
                )
            assignment[node] = choice
        rounds += 1
    return ConflictColouringResult(assignment=assignment, rounds=rounds)


def _solve_rounds_array(
    instance: ConflictColouringInstance,
    classes: Dict[int, List[NodeKey]],
) -> ConflictColouringResult:
    """Array tier of the schedule rounds (see :func:`solve_conflict_colouring`).

    Choices are byte-identical to the per-node greedy because a schedule
    class is an independent set of the conflict graph (validated by the
    caller): within a round no node's choice can see another same-class
    node, so evaluating the whole class against the *previous* rounds'
    assignment and committing afterwards is exactly the "simultaneous"
    semantics the sequential loop implements node by node.  The first node
    (in class order) without a conflict-free colour raises the same
    :class:`repro.errors.SimulationError` the sequential greedy raises.

    Everything is position-indexed against each node's own colour list:
    choice order matters ("first colour in the list" is the tie-break)
    and the returned assignment must hold the node's own list entry —
    canonicalising equal-but-distinct colour objects across nodes would
    break byte-identity with the sequential greedy.
    """
    forbidden = instance.forbidden
    assignment: Dict[NodeKey, Colour] = {}
    rounds = 0
    for schedule_class in sorted(classes):
        pending: List[Tuple[NodeKey, int]] = []
        for node in classes[schedule_class]:
            own_colours = instance.available[node]
            fixed_neighbours = [
                neighbour
                for neighbour in instance.adjacency[node]
                if neighbour in assignment
            ]
            # The same short-circuiting scan as the sequential greedy, so
            # the predicate sees the exact same call sequence (and may
            # even raise identically).
            position: Optional[int] = None
            for candidate, colour in enumerate(own_colours):
                ok = True
                for neighbour in fixed_neighbours:
                    fixed = assignment[neighbour]
                    if forbidden(node, neighbour, colour, fixed):
                        ok = False
                        break
                    if forbidden(neighbour, node, fixed, colour):
                        ok = False
                        break
                if ok:
                    position = candidate
                    break
            if position is None:
                raise SimulationError(
                    f"greedy conflict colouring failed at node {node!r}: "
                    "no available colour is conflict-free (increase the list size)"
                )
            pending.append((node, position))
        for node, chosen in pending:
            assignment[node] = instance.available[node][chosen]
        rounds += 1
    return ConflictColouringResult(assignment=assignment, rounds=rounds)
