"""Colour-count reduction and greedy maximal independent sets.

Linial's step (:mod:`repro.symmetry.linial`) stalls once the palette reaches
``O(Δ² log Δ)`` colours.  The remaining distance to a ``(Δ+1)``-colouring is
covered here by the Kuhn–Wattenhofer batch reduction: the palette is split
into groups of ``2(Δ+1)`` colours, every group is reduced to ``Δ+1`` colours
in parallel (one colour class per round), and the process repeats until only
``Δ+1`` colours remain.  This costs ``O(Δ log(m / Δ))`` rounds — a quantity
that does not depend on ``n`` once Linial has brought the palette down to a
function of ``Δ``.

A proper colouring immediately yields a maximal independent set by the
classic greedy rule: process colour classes in increasing order, a node
joins if none of its neighbours has joined yet.  One colour class is one
round.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Sequence, Set, Tuple

from repro.errors import SimulationError

NodeKey = Hashable
Adjacency = Mapping[NodeKey, Sequence[NodeKey]]


@dataclass
class ReductionResult:
    """A proper colouring with a reduced palette, plus the rounds spent."""

    colours: Dict[NodeKey, int]
    rounds: int
    palette_size: int


def _max_degree(adjacency: Adjacency) -> int:
    return max((len(neighbours) for neighbours in adjacency.values()), default=0)


def _normalise_palette(colours: Mapping[NodeKey, int]) -> Dict[NodeKey, int]:
    """Rename colours to 0..(m-1), preserving order.

    Renaming is free in the LOCAL model only if it is globally consistent
    knowledge; here the palette bound (max colour + 1) is already common
    knowledge, so compacting empty classes is purely a bookkeeping step used
    between *our* phases and is not charged any rounds.  Round counts are
    therefore conservative upper bounds in terms of the palette bound.
    """
    used = sorted(set(colours.values()))
    rename = {colour: index for index, colour in enumerate(used)}
    return {node: rename[colour] for node, colour in colours.items()}


def reduce_colours_to(
    adjacency: Adjacency,
    colours: Mapping[NodeKey, int],
    target: int = 0,
) -> ReductionResult:
    """Reduce a proper colouring to at most ``target`` colours.

    ``target`` defaults to ``Δ + 1``.  The input must be a proper colouring;
    the output is a proper colouring with palette ``{0, ..., target-1}``.
    The round count follows the Kuhn–Wattenhofer schedule described in the
    module docstring.
    """
    if not adjacency:
        return ReductionResult(colours={}, rounds=0, palette_size=0)
    degree = _max_degree(adjacency)
    if target <= 0:
        target = degree + 1
    if target < degree + 1:
        raise SimulationError(
            f"cannot reduce to {target} colours on a graph of maximum degree {degree}"
        )

    current = _normalise_palette(colours)
    palette = max(current.values()) + 1
    rounds = 0

    while palette > target:
        group_size = 2 * target
        group_count = -(-palette // group_size)
        # Nodes are grouped by colour; each group is reduced to ``target``
        # colours.  Within one group, colours target..group_size-1 are
        # removed one class per round; all groups work in parallel, so the
        # round cost of this sweep is the largest number of removed classes.
        new_colours: Dict[NodeKey, int] = {}
        removed_classes = 0
        for group_index in range(group_count):
            low = group_index * group_size
            high = min(low + group_size, palette)
            group_nodes = [node for node, colour in current.items() if low <= colour < high]
            # Local palette for this group in the output colouring.
            base = group_index * target
            group_current = {node: current[node] - low for node in group_nodes}
            removed_here = 0
            for colour_to_remove in range(target, high - low):
                for node in group_nodes:
                    if group_current[node] != colour_to_remove:
                        continue
                    taken: Set[int] = set()
                    for neighbour in adjacency[node]:
                        if neighbour in group_current:
                            taken.add(group_current[neighbour])
                    free = next(c for c in range(target) if c not in taken)
                    group_current[node] = free
                removed_here += 1
            removed_classes = max(removed_classes, removed_here)
            for node in group_nodes:
                new_colours[node] = base + group_current[node]
        rounds += removed_classes
        current = _normalise_palette(new_colours)
        palette = max(current.values()) + 1

    return ReductionResult(colours=current, rounds=rounds, palette_size=palette)


@dataclass
class MISResult:
    """A maximal independent set together with the rounds spent computing it."""

    members: Set[NodeKey]
    rounds: int


def greedy_mis_from_colouring(
    adjacency: Adjacency,
    colours: Mapping[NodeKey, int],
) -> MISResult:
    """Compute a maximal independent set by greedy processing of colour classes.

    The input colouring must be proper, so all nodes of one class can decide
    simultaneously (they are pairwise non-adjacent); processing one class
    costs one round.
    """
    members: Set[NodeKey] = set()
    classes: Dict[int, List[NodeKey]] = {}
    for node, colour in colours.items():
        classes.setdefault(colour, []).append(node)
    rounds = 0
    for colour in sorted(classes):
        for node in classes[colour]:
            if not any(neighbour in members for neighbour in adjacency[node]):
                members.add(node)
        rounds += 1
    return MISResult(members=members, rounds=rounds)


def greedy_colouring_by_classes(
    adjacency: Adjacency,
    schedule_colours: Mapping[NodeKey, int],
    palette: Sequence[int],
) -> ReductionResult:
    """Greedy proper colouring processed by the classes of a schedule colouring.

    ``schedule_colours`` must be a proper colouring of the *same* graph; the
    nodes of one schedule class choose simultaneously the smallest palette
    colour not already taken by a neighbour.  Requires
    ``len(palette) >= Δ + 1``.
    """
    degree = _max_degree(adjacency)
    if len(palette) < degree + 1:
        raise SimulationError(
            f"palette of size {len(palette)} too small for maximum degree {degree}"
        )
    assigned: Dict[NodeKey, int] = {}
    classes: Dict[int, List[NodeKey]] = {}
    for node, colour in schedule_colours.items():
        classes.setdefault(colour, []).append(node)
    rounds = 0
    for colour in sorted(classes):
        for node in classes[colour]:
            taken = {assigned[neighbour] for neighbour in adjacency[node] if neighbour in assigned}
            assigned[node] = next(c for c in palette if c not in taken)
        rounds += 1
    return ReductionResult(colours=assigned, rounds=rounds, palette_size=len(palette))
