"""X-orientation problems as pairwise LCLs.

Each node outputs a 4-tuple ``(north, east, south, west)`` of bits; bit 1
means the corresponding incident edge is oriented *towards* the node (and
therefore contributes to its in-degree).  Two adjacent nodes must agree on
the shared edge: exactly one of them may claim it as incoming.  This makes
the in-degree condition a per-node predicate and the consistency condition a
pair relation — precisely the shape required by the synthesis engine and by
the normal form.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Set, Tuple

from repro.core.lcl import GridLCL, PairRelation
from repro.errors import InvalidProblemError
from repro.grid.torus import EdgeKey, Node, ToroidalGrid

OrientationLabel = Tuple[int, int, int, int]

#: All sixteen orientation labels ``(north, east, south, west)``.
ORIENTATION_ALPHABET: Tuple[OrientationLabel, ...] = tuple(
    itertools.product((0, 1), repeat=4)
)

NORTH, EAST, SOUTH, WEST = 0, 1, 2, 3


def in_degree_of_label(label: OrientationLabel) -> int:
    """In-degree claimed by an orientation label."""
    return sum(label)


def _horizontal_consistent(west_label: OrientationLabel, east_label: OrientationLabel) -> bool:
    """The edge between a node and its eastern neighbour has exactly one head."""
    return west_label[EAST] + east_label[WEST] == 1


def _vertical_consistent(south_label: OrientationLabel, north_label: OrientationLabel) -> bool:
    """The edge between a node and its northern neighbour has exactly one head."""
    return south_label[NORTH] + north_label[SOUTH] == 1


def x_orientation_problem(in_degrees: Iterable[int]) -> GridLCL:
    """Build the X-orientation problem for the given set of allowed in-degrees."""
    allowed: Set[int] = set(in_degrees)
    if not allowed:
        raise InvalidProblemError("the set X of allowed in-degrees must be non-empty")
    if any(value < 0 or value > 4 for value in allowed):
        raise InvalidProblemError("in-degrees on a two-dimensional grid lie in {0,...,4}")

    name = "{" + ",".join(str(value) for value in sorted(allowed)) + "}-orientation"
    horizontal = PairRelation.from_predicate(ORIENTATION_ALPHABET, _horizontal_consistent)
    vertical = PairRelation.from_predicate(ORIENTATION_ALPHABET, _vertical_consistent)
    return GridLCL(
        name=name,
        alphabet=ORIENTATION_ALPHABET,
        node_predicate=lambda label: in_degree_of_label(label) in allowed,
        horizontal=horizontal,
        vertical=vertical,
    )


def orientation_labels_to_edge_directions(
    grid: ToroidalGrid,
    labels: Dict[Node, OrientationLabel],
) -> Dict[EdgeKey, int]:
    """Convert node orientation labels into per-edge directions.

    The result maps every canonical edge key ``(node, axis)`` to ``+1`` when
    the edge is oriented in the positive axis direction (away from ``node``)
    and ``-1`` otherwise.  A :class:`ValueError` is raised if the two
    endpoints of some edge disagree — such labellings are exactly the ones
    the verifier rejects.
    """
    if grid.dimension != 2:
        raise InvalidProblemError("orientation labels are defined for two-dimensional grids")
    directions: Dict[EdgeKey, int] = {}
    for node in grid.nodes():
        label = labels[node]
        east_neighbour = grid.shift(node, (1, 0))
        north_neighbour = grid.shift(node, (0, 1))
        east_label = labels[east_neighbour]
        north_label = labels[north_neighbour]
        if label[EAST] + east_label[WEST] != 1:
            raise ValueError(f"inconsistent orientation of the east edge of {node}")
        if label[NORTH] + north_label[SOUTH] != 1:
            raise ValueError(f"inconsistent orientation of the north edge of {node}")
        directions[(node, 0)] = -1 if label[EAST] == 1 else 1
        directions[(node, 1)] = -1 if label[NORTH] == 1 else 1
    return directions


def in_degrees_from_labels(
    grid: ToroidalGrid, labels: Dict[Node, OrientationLabel]
) -> Dict[Node, int]:
    """Return every node's in-degree under a consistent orientation labelling."""
    return {node: in_degree_of_label(labels[node]) for node in grid.nodes()}
