"""Edge-orientation problems on two-dimensional grids (Section 11).

For ``X ⊆ {0, 1, 2, 3, 4}``, an *X-orientation* orients every edge of the
grid so that each node's in-degree lies in ``X``.  Theorem 22 classifies the
complexity completely: trivial when ``2 ∈ X``, ``Θ(log* n)`` when
``{1,3,4} ⊆ X`` or ``{0,1,3} ⊆ X``, and global otherwise (in many cases no
solution exists for infinitely many ``n``).

Orientations are encoded as node labellings: each node outputs, for each of
its four incident edges, whether that edge points towards it; agreement of
the two endpoints of an edge is a pairwise constraint, which makes the
problems directly synthesisable by the Section 7 engine.
"""

from repro.orientation.problems import (
    ORIENTATION_ALPHABET,
    in_degree_of_label,
    orientation_labels_to_edge_directions,
    x_orientation_problem,
)
from repro.orientation.classify import (
    classify_x_orientation,
    counting_obstruction,
    orientation_classification_table,
)
from repro.orientation.algorithms import (
    flip_orientation_labelling,
    solve_x_orientation_globally,
    synthesise_x_orientation_algorithm,
    trivial_orientation_labelling,
)

__all__ = [
    "ORIENTATION_ALPHABET",
    "classify_x_orientation",
    "counting_obstruction",
    "flip_orientation_labelling",
    "in_degree_of_label",
    "orientation_classification_table",
    "orientation_labels_to_edge_directions",
    "solve_x_orientation_globally",
    "synthesise_x_orientation_algorithm",
    "trivial_orientation_labelling",
    "x_orientation_problem",
]
