"""Algorithms for X-orientation problems.

Three regimes, matching the Theorem 22 classification:

* ``2 ∈ X`` — output the input orientation (zero rounds);
* ``{1,3,4} ⊆ X`` or ``{0,1,3} ⊆ X`` — synthesise a normal-form algorithm
  with ``k = 1`` (Lemma 23); the ``{0,1,3}`` case is obtained from the
  ``{1,3,4}`` case by flipping every edge;
* otherwise — the global brute-force algorithm: gather the whole grid and
  solve one exact instance, here encoded as a SAT problem over one Boolean
  per edge.  The same encoding doubles as an unsolvability prover for the
  small odd instances used as lower-bound evidence.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set, Tuple

from repro.errors import SynthesisError, UnsolvableInstanceError
from repro.grid.identifiers import IdentifierAssignment
from repro.grid.torus import Direction, EdgeKey, Node, ToroidalGrid
from repro.local_model.algorithm import AlgorithmResult
from repro.orientation.problems import (
    ORIENTATION_ALPHABET,
    OrientationLabel,
    in_degree_of_label,
    x_orientation_problem,
)
from repro.speedup.normal_form import NormalFormAlgorithm
from repro.synthesis.lookup import build_lookup_algorithm
from repro.synthesis.sat import CNF, solve_cnf
from repro.synthesis.synthesiser import synthesise_with_budget


def trivial_orientation_labelling(grid: ToroidalGrid) -> Dict[Node, OrientationLabel]:
    """The input orientation of the grid, as orientation labels.

    Every edge points towards the larger coordinate, so every node has
    in-degree exactly 2 (incoming from the west and from the south).
    """
    label: OrientationLabel = (0, 0, 1, 1)  # north out, east out, south in, west in
    return {node: label for node in grid.nodes()}


def flip_orientation_labelling(
    labels: Dict[Node, OrientationLabel]
) -> Dict[Node, OrientationLabel]:
    """Reverse the direction of every edge.

    Flipping maps an X-orientation to a ``{4 - x : x ∈ X}``-orientation; in
    particular it carries ``{1,3,4}``-orientations to ``{0,1,3}``-orientations
    and vice versa, which is how the paper handles the second local case.
    """
    return {
        node: tuple(1 - bit for bit in label)  # type: ignore[misc]
        for node, label in labels.items()
    }


def synthesise_x_orientation_algorithm(
    in_degrees: Iterable[int],
    max_k: int = 2,
    engine: str = "auto",
) -> NormalFormAlgorithm:
    """Synthesise a normal-form algorithm for a local X-orientation problem.

    For ``{1,3,4}`` (and supersets) the paper reports success already at
    ``k = 1``; the same holds for ``{0,1,3}`` by symmetry.  For global
    problems the search fails within its budget and a
    :class:`repro.errors.SynthesisError` is raised.
    """
    problem = x_orientation_problem(in_degrees)
    search = synthesise_with_budget(problem, max_k=max_k, engine=engine)
    if not search.succeeded or search.best is None:
        raise SynthesisError(
            f"synthesis failed for {problem.name}; the problem is likely global "
            f"(attempts: {[outcome.certificate for outcome in search.attempts]})"
        )
    return build_lookup_algorithm(search.best, name=f"{problem.name}-synthesised")


def solve_x_orientation_globally(
    grid: ToroidalGrid,
    in_degrees: Iterable[int],
    conflict_budget: int = 500_000,
) -> Tuple[Dict[EdgeKey, int], AlgorithmResult]:
    """Solve an X-orientation instance exactly (the Θ(n) brute-force route).

    One Boolean variable per edge states whether the edge keeps its input
    direction (towards the larger coordinate); per-node clauses forbid every
    in-degree outside ``X``.  Returns the edge directions (``+1`` keeps the
    input direction, ``-1`` reverses it) and an :class:`AlgorithmResult`
    whose round count is the graph diameter — the cost of gathering the
    whole instance at one node.

    Raises :class:`repro.errors.UnsolvableInstanceError` when the instance
    is unsatisfiable; this is how the experiments certify, for example, that
    ``{1,3}``-orientations do not exist on odd tori (Lemma 24).
    """
    allowed: Set[int] = set(in_degrees)
    cnf = CNF()
    variable_of: Dict[EdgeKey, int] = {}
    for edge in grid.edges():
        variable_of[edge] = cnf.new_variable()

    for node in grid.nodes():
        incident = []
        for axis in range(grid.dimension):
            outgoing = (node, axis)
            incoming = (grid.step(node, Direction(axis, -1)), axis)
            # The outgoing edge contributes to this node's in-degree when it
            # is reversed; the incoming edge contributes when it keeps its
            # input direction.
            incident.append((variable_of[outgoing], False))
            incident.append((variable_of[incoming], True))
        # Forbid every assignment of the incident edges whose in-degree is
        # outside X.
        for mask in range(1 << len(incident)):
            in_degree = 0
            for position, (_variable, counts_when_true) in enumerate(incident):
                bit = bool(mask & (1 << position))
                if bit == counts_when_true:
                    in_degree += 1
            if in_degree in allowed:
                continue
            clause = []
            for position, (variable, _counts_when_true) in enumerate(incident):
                bit = bool(mask & (1 << position))
                clause.append(-variable if bit else variable)
            cnf.add_clause(clause)

    result = solve_cnf(cnf, conflict_budget=conflict_budget)
    if not result.satisfiable:
        if result.exhausted_budget:
            raise SynthesisError("global orientation solver exhausted its budget")
        raise UnsolvableInstanceError(
            f"no {sorted(allowed)}-orientation exists on the {grid.sides} torus"
        )
    directions = {
        edge: (1 if result.assignment[variable] else -1)
        for edge, variable in variable_of.items()
    }
    diameter = sum(side // 2 for side in grid.sides)
    algorithm_result = AlgorithmResult(
        edge_labels=dict(directions),
        rounds=diameter,
        metadata={"engine": "sat", "conflicts": result.conflicts},
    )
    return directions, algorithm_result


def in_degrees_from_edge_directions(
    grid: ToroidalGrid, directions: Dict[EdgeKey, int]
) -> Dict[Node, int]:
    """Compute every node's in-degree from per-edge directions."""
    in_degree: Dict[Node, int] = {node: 0 for node in grid.nodes()}
    for (node, axis), direction in directions.items():
        head = grid.step(node, Direction(axis, 1)) if direction == 1 else node
        in_degree[head] += 1
    return in_degree


def run_local_orientation_algorithm(
    grid: ToroidalGrid,
    identifiers: IdentifierAssignment,
    in_degrees: Iterable[int],
    algorithm: Optional[NormalFormAlgorithm] = None,
) -> AlgorithmResult:
    """Convenience wrapper: synthesise (or reuse) and run a local X-orientation algorithm."""
    if algorithm is None:
        algorithm = synthesise_x_orientation_algorithm(in_degrees)
    return algorithm.run(grid, identifiers)
