"""Classification of X-orientation problems (Theorem 22).

Theorem 22 gives a complete classification:

* ``Θ(1)`` when ``2 ∈ X`` — the consistent input orientation of the grid is
  already a valid output;
* ``Θ(log* n)`` when ``{1, 3, 4} ⊆ X`` or ``{0, 1, 3} ⊆ X`` — the paper
  proves this computationally, by the synthesis techniques of Section 7 with
  ``k = 1`` (Lemma 23), and flipping all edges maps one case to the other;
* otherwise global — for many of these sets simple counting shows that no
  solution exists for infinitely many ``n`` (Lemma 24 is the ``{1,3}``
  instance), and the remaining case ``{0,3,4}`` is proved global by a
  reduction to q-sum coordination (Theorem 25).

Besides the theorem-level classification this module provides the counting
obstructions explicitly, so the benchmarks can print the per-``X`` reasons
and the tests can cross-check them against exhaustive small-instance
searches.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.core.complexity import ClassificationResult, ComplexityClass


def _normalise(in_degrees: Iterable[int]) -> FrozenSet[int]:
    values = frozenset(in_degrees)
    if not values or any(value < 0 or value > 4 for value in values):
        raise ValueError("X must be a non-empty subset of {0, 1, 2, 3, 4}")
    return values


def counting_obstruction(in_degrees: Iterable[int], n: int) -> Optional[str]:
    """Return a counting reason why no X-orientation of the n×n torus exists.

    The torus has ``n²`` nodes and ``2n²`` edges, so the in-degrees must sum
    to exactly ``2n²``.  The function checks whether ``2n²`` can be written
    as a sum of ``n²`` values from ``X``; if not, it returns a human-readable
    explanation (used as evidence in the classification experiments).  A
    return value of ``None`` means counting alone does not rule a solution
    out — it does *not* mean a solution exists.
    """
    values = sorted(_normalise(in_degrees))
    node_count = n * n
    target = 2 * node_count
    minimum = values[0] * node_count
    maximum = values[-1] * node_count
    if target < minimum or target > maximum:
        return (
            f"in-degrees in {values} force a total between {minimum} and {maximum}, "
            f"but the {n}x{n} torus has exactly {target} edges"
        )
    # Feasibility of hitting the target exactly: dynamic programming over
    # the achievable totals modulo the gcd of the pairwise differences.
    import math

    gcd = 0
    for value in values[1:]:
        gcd = math.gcd(gcd, value - values[0])
    if gcd == 0:
        if minimum != target:
            return (
                f"all in-degrees equal {values[0]}, forcing a total of {minimum} "
                f"instead of {target}"
            )
        return None
    if (target - minimum) % gcd != 0:
        return (
            f"totals achievable with in-degrees {values} differ from {minimum} by "
            f"multiples of {gcd}, which cannot reach {target}"
        )
    # Special parity argument of Lemma 24 and friends: if every value in X is
    # odd, the number of nodes must be even.
    if all(value % 2 == 1 for value in values) and node_count % 2 == 1:
        return (
            f"all allowed in-degrees are odd, so the in-degree total is odd times "
            f"{node_count}, which cannot equal the even number {target} of edges"
        )
    return None


def classify_x_orientation(in_degrees: Iterable[int]) -> ClassificationResult:
    """Classify an X-orientation problem according to Theorem 22."""
    values = _normalise(in_degrees)
    name = "{" + ",".join(str(value) for value in sorted(values)) + "}-orientation"

    if 2 in values:
        return ClassificationResult(
            problem_name=name,
            complexity=ComplexityClass.CONSTANT,
            exact=True,
            evidence={"reason": "the consistent input orientation already has in-degree 2 everywhere"},
        )
    if values >= {1, 3, 4} or values >= {0, 1, 3}:
        witness = "{1,3,4}" if values >= {1, 3, 4} else "{0,1,3}"
        return ClassificationResult(
            problem_name=name,
            complexity=ComplexityClass.LOG_STAR,
            exact=True,
            evidence={
                "reason": f"contains {witness}; synthesis succeeds with k = 1 (Lemma 23)",
                "witness_subset": witness,
            },
        )
    # Everything else is global.  Attach the sharpest reason we can compute.
    odd_obstruction = counting_obstruction(values, 3)
    evidence: Dict[str, object] = {"reason": "Theorem 22: no local algorithm exists"}
    if odd_obstruction is not None:
        evidence["counting_obstruction_odd_n"] = odd_obstruction
    if values == frozenset({0, 3, 4}) or values == frozenset({0, 1, 4}):
        evidence["reduction"] = "reduction to q-sum coordination (Theorem 25)"
    return ClassificationResult(
        problem_name=name,
        complexity=ComplexityClass.GLOBAL,
        exact=True,
        evidence=evidence,
    )


def orientation_classification_table() -> List[Tuple[Tuple[int, ...], ClassificationResult]]:
    """Classify every non-empty ``X ⊆ {0,...,4}`` (the Theorem 22 table)."""
    table: List[Tuple[Tuple[int, ...], ClassificationResult]] = []
    for mask in range(1, 32):
        values: Set[int] = {value for value in range(5) if mask & (1 << value)}
        table.append((tuple(sorted(values)), classify_x_orientation(values)))
    return table
