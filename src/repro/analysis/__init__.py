"""Experiment harness: round measurements, sweeps and report tables."""

from repro.analysis.rounds import RoundMeasurement, log_star_curve, measure_over_sizes
from repro.analysis.experiments import ExperimentTable
from repro.analysis.report import format_markdown_table

__all__ = [
    "ExperimentTable",
    "RoundMeasurement",
    "format_markdown_table",
    "log_star_curve",
    "measure_over_sizes",
]
