"""Markdown table formatting for experiment reports."""

from __future__ import annotations

from typing import Any, Dict, List, Sequence


def format_markdown_table(columns: Sequence[str], rows: List[Dict[str, Any]]) -> str:
    """Format rows (dictionaries) as a GitHub-flavoured markdown table."""
    header = "| " + " | ".join(columns) + " |"
    separator = "| " + " | ".join("---" for _ in columns) + " |"
    lines = [header, separator]
    for row in rows:
        cells = []
        for column in columns:
            value = row.get(column, "")
            cells.append(_format_cell(value))
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3g}"
    if isinstance(value, bool):
        return "yes" if value else "no"
    return str(value)
