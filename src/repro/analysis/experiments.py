"""Light-weight experiment tables used by the benchmark harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence

from repro.analysis.report import format_markdown_table


@dataclass
class ExperimentTable:
    """A named table of result rows, printable as markdown.

    The benchmark for each figure/claim of the paper assembles one of these
    and prints it, so that ``pytest benchmarks/ --benchmark-only -s`` shows
    the regenerated rows next to the timing numbers.
    """

    experiment_id: str
    title: str
    columns: Sequence[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, **values: Any) -> None:
        """Append one row (missing columns are left blank)."""
        self.rows.append(values)

    def add_note(self, note: str) -> None:
        """Attach a free-text note printed under the table."""
        self.notes.append(note)

    def render(self) -> str:
        """Render the table (plus notes) as markdown."""
        lines = [f"## {self.experiment_id}: {self.title}", ""]
        lines.append(format_markdown_table(self.columns, self.rows))
        for note in self.notes:
            lines.append(f"- {note}")
        return "\n".join(lines)

    def show(self) -> None:
        """Print the rendered table (used by the benchmarks)."""
        print("\n" + self.render() + "\n")
