"""Empirical round measurements over sweeps of the grid size.

The paper's complexity claims are asymptotic (``Θ(log* n)`` versus
``Θ(n)``); the benchmarks validate the *shape* by running algorithms over a
sweep of grid sizes and reporting the charged round counts together with the
reference curves (``log* n``, ``n``).  The helpers here keep that sweep
logic in one place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

from repro.grid.identifiers import IdentifierAssignment, random_identifiers
from repro.grid.torus import ToroidalGrid
from repro.local_model.algorithm import AlgorithmResult
from repro.utils.math import log_star


@dataclass
class RoundMeasurement:
    """Round counts of one algorithm over a sweep of grid sizes."""

    algorithm_name: str
    sizes: List[int] = field(default_factory=list)
    rounds: List[int] = field(default_factory=list)
    metadata: List[Dict[str, object]] = field(default_factory=list)

    def as_rows(self) -> List[Dict[str, object]]:
        """Rows suitable for the report formatter."""
        return [
            {
                "n": size,
                "rounds": rounds,
                "log*(n)": log_star(size),
                "rounds / n": round(rounds / size, 3),
            }
            for size, rounds in zip(self.sizes, self.rounds)
        ]

    def growth_ratio(self) -> float:
        """Ratio between the last and first round counts of the sweep.

        Local (``Θ(log* n)``-style) algorithms stay near 1; global
        algorithms grow linearly with ``n``.
        """
        if not self.rounds or self.rounds[0] == 0:
            return float("inf")
        return self.rounds[-1] / self.rounds[0]


def measure_over_sizes(
    algorithm_name: str,
    sizes: Sequence[int],
    run: Callable[[ToroidalGrid, IdentifierAssignment], AlgorithmResult],
    seed: int = 1,
) -> RoundMeasurement:
    """Run an algorithm on square grids of the given sizes and record rounds."""
    measurement = RoundMeasurement(algorithm_name=algorithm_name)
    for size in sizes:
        grid = ToroidalGrid.square(size)
        identifiers = random_identifiers(grid, seed=seed)
        result = run(grid, identifiers)
        measurement.sizes.append(size)
        measurement.rounds.append(result.rounds)
        measurement.metadata.append(dict(result.metadata))
    return measurement


def log_star_curve(sizes: Sequence[int]) -> List[int]:
    """The reference curve ``log* n`` over the sweep."""
    return [log_star(size) for size in sizes]
