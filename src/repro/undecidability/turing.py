"""A deterministic single-tape Turing machine simulator.

The ``L_M`` construction needs, for a halting machine ``M``, the full
execution table of ``M`` started on the empty tape: row ``j`` of the table
is the tape content before step ``j`` and records which cell carries the
head and in which state.  The simulator produces exactly that table; the
module also provides the small example machines used by the experiments
(one that halts after a handful of steps, one that provably never halts,
and a slightly busier halting machine for variety).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

BLANK = "_"

Transition = Tuple[str, str, int]  # (new state, written symbol, head movement)


@dataclass(frozen=True)
class Configuration:
    """One row of the execution table: tape, head position and state."""

    tape: Tuple[str, ...]
    head: int
    state: str


@dataclass
class ExecutionTable:
    """The full execution history of a machine started on the empty tape."""

    rows: List[Configuration] = field(default_factory=list)
    halted: bool = False

    @property
    def steps(self) -> int:
        """Number of steps executed (rows minus the initial configuration)."""
        return max(0, len(self.rows) - 1)

    @property
    def width(self) -> int:
        """Number of tape cells used by the table."""
        return len(self.rows[0].tape) if self.rows else 0


@dataclass(frozen=True)
class TuringMachine:
    """A deterministic Turing machine working on a right-infinite tape.

    Attributes
    ----------
    name:
        Identifier used in labels (all nodes must agree on the machine).
    transitions:
        Mapping ``(state, symbol) -> (new state, written symbol, move)``
        with ``move`` in ``{-1, 0, +1}``; a missing entry means the machine
        halts in that configuration.
    initial_state / halting_states:
        The start state and the set of accepting/halting states.
    """

    name: str
    transitions: Dict[Tuple[str, str], Transition]
    initial_state: str = "start"
    halting_states: Tuple[str, ...] = ("halt",)

    def halts_within(self, max_steps: int) -> Optional[int]:
        """Return the number of steps after which the machine halts, or None."""
        table = self.run(max_steps)
        return table.steps if table.halted else None

    def run(self, max_steps: int) -> ExecutionTable:
        """Run on the empty tape for at most ``max_steps`` steps.

        The tape is truncated/padded to the number of cells the run could
        possibly touch (``max_steps + 1``), which is what the grid encoding
        needs.
        """
        width = max_steps + 1
        tape = [BLANK] * width
        head = 0
        state = self.initial_state
        table = ExecutionTable()
        table.rows.append(Configuration(tuple(tape), head, state))
        for _step in range(max_steps):
            if state in self.halting_states:
                table.halted = True
                return table
            key = (state, tape[head])
            if key not in self.transitions:
                table.halted = True
                return table
            new_state, written, move = self.transitions[key]
            tape[head] = written
            head = max(0, min(width - 1, head + move))
            state = new_state
            table.rows.append(Configuration(tuple(tape), head, state))
        if state in self.halting_states:
            table.halted = True
        return table


def halting_machine() -> TuringMachine:
    """A machine that writes two symbols and halts after three steps."""
    transitions: Dict[Tuple[str, str], Transition] = {
        ("start", BLANK): ("write", "a", 1),
        ("write", BLANK): ("back", "b", -1),
        ("back", "a"): ("halt", "a", 0),
    }
    return TuringMachine(name="halting-ab", transitions=transitions)


def busy_machine() -> TuringMachine:
    """A slightly longer halting computation (seven steps, three symbols)."""
    transitions: Dict[Tuple[str, str], Transition] = {
        ("start", BLANK): ("right1", "x", 1),
        ("right1", BLANK): ("right2", "y", 1),
        ("right2", BLANK): ("left1", "z", -1),
        ("left1", "y"): ("left2", "y", -1),
        ("left2", "x"): ("mark", "w", 1),
        ("mark", "y"): ("finish", "y", 1),
        ("finish", "z"): ("halt", "z", 0),
    }
    return TuringMachine(name="busy-wxyz", transitions=transitions)


def non_halting_machine() -> TuringMachine:
    """A machine that walks right forever, never reaching a halting state."""
    transitions: Dict[Tuple[str, str], Transition] = {
        ("start", BLANK): ("start", "r", 1),
        ("start", "r"): ("start", "r", 1),
    }
    return TuringMachine(name="right-forever", transitions=transitions)
