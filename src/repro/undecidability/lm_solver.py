"""Solving ``L_M`` (Section 6).

Two routes, matching the dichotomy of Theorem 3:

* **M halts in s steps** — the ``O(log* n)`` solution: compute an anchor set
  (a maximal independent set of ``G^(k)`` with ``k = 4(s+1)``), build the
  Voronoi decomposition, give every node the quadrant/border type pointing
  back to its anchor (equations (1)–(2) of the paper), 2-colour the
  diagonals by distance parity, and write the execution table of ``M`` into
  the north-east quadrant of every anchor.  Everything except the anchor
  computation is constant-time.
* **M does not halt** — no anchored labelling can be completed (the table
  never reaches a halting row), so the only way to solve ``L_M`` is the
  global ``P1`` branch: a proper 3-colouring, which requires ``Θ(n)``
  rounds by Theorem 9.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.colouring.vertex_global import global_three_colouring
from repro.errors import UnsolvableInstanceError
from repro.grid.identifiers import IdentifierAssignment
from repro.grid.torus import Node, ToroidalGrid
from repro.local_model.algorithm import AlgorithmResult
from repro.speedup.voronoi import compute_voronoi_decomposition
from repro.symmetry.mis import compute_anchors
from repro.undecidability.lm_problem import LMLabel
from repro.undecidability.turing import TuringMachine


def _quadrant_type(dx: int, dy: int) -> str:
    """Type of a node at displacement ``(dx, dy)`` from its anchor.

    The type points back towards the anchor, following equations (1)–(2) of
    the paper (with our axis convention: positive ``dx`` is east, positive
    ``dy`` is north).
    """
    if dx == 0 and dy == 0:
        return "A"
    if dx == 0:
        return "S" if dy > 0 else "N"
    if dy == 0:
        return "W" if dx > 0 else "E"
    if dx > 0 and dy > 0:
        return "SW"
    if dx > 0 and dy < 0:
        return "NW"
    if dx < 0 and dy > 0:
        return "SE"
    return "NE"


def _diagonal_bit(dx: int, dy: int) -> int:
    """Alternating bit along every maximal same-type diagonal chain."""
    if dx == 0 or dy == 0:
        return (abs(dx) + abs(dy)) % 2
    return min(abs(dx), abs(dy)) % 2


def solve_lm_locally(
    grid: ToroidalGrid,
    identifiers: IdentifierAssignment,
    machine: TuringMachine,
    max_steps: int = 64,
) -> Tuple[Dict[Node, LMLabel], AlgorithmResult]:
    """Produce the anchored (P2) solution; only possible when ``M`` halts.

    Raises :class:`repro.errors.UnsolvableInstanceError` when the machine
    does not halt within ``max_steps`` steps (for a genuinely non-halting
    machine the loop of Section 7 would simply never terminate — the
    explicit bound turns that into a clean failure), or when the grid is too
    small for the anchor spacing ``4(s+1)``.
    """
    table = machine.run(max_steps)
    if not table.halted:
        raise UnsolvableInstanceError(
            f"machine {machine.name!r} did not halt within {max_steps} steps; "
            "the anchored branch of L_M cannot be completed"
        )
    steps = table.steps
    spacing = 4 * (steps + 1)
    if min(grid.sides) <= 2 * spacing:
        raise UnsolvableInstanceError(
            f"grid side {min(grid.sides)} too small for anchor spacing {spacing}; "
            "use a larger grid or solve the P1 branch instead"
        )

    anchors = compute_anchors(grid, identifiers, spacing, norm="l1")
    decomposition = compute_voronoi_decomposition(grid, anchors.members, search_radius=spacing)

    width = max(1, max(row.head for row in table.rows) + 1)
    payload: Dict[Node, Tuple[str, str]] = {}
    for anchor in anchors.members:
        for row_index, configuration in enumerate(table.rows):
            for column in range(width):
                node = grid.shift(anchor, (column, row_index))
                state = configuration.state if configuration.head == column else None
                payload[node] = (configuration.tape[column], state)

    labels: Dict[Node, LMLabel] = {}
    for node in grid.nodes():
        dx, dy = decomposition.local_coordinates[node]
        labels[node] = LMLabel(
            branch="P2",
            colour=_diagonal_bit(dx, dy),
            node_type=_quadrant_type(dx, dy),
            machine=machine.name,
            cell=payload.get(node),
        )
    result = AlgorithmResult(
        node_labels=dict(labels),
        rounds=anchors.rounds + 2 * spacing,
        metadata={
            "branch": "P2",
            "anchor_count": len(anchors.members),
            "machine_steps": steps,
            "anchor_spacing": spacing,
            "anchor_rounds": anchors.rounds,
        },
    )
    return labels, result


def solve_lm_globally(grid: ToroidalGrid, machine: TuringMachine) -> Tuple[Dict[Node, LMLabel], AlgorithmResult]:
    """The fallback that works for every machine: the global P1 branch."""
    colouring = global_three_colouring(grid)
    labels = {
        node: LMLabel(branch="P1", colour=colour + 1, machine=machine.name)
        for node, colour in colouring.node_labels.items()
    }
    result = AlgorithmResult(
        node_labels=dict(labels),
        rounds=colouring.rounds,
        metadata={"branch": "P1"},
    )
    return labels, result
