"""The undecidability construction of Section 6.

For every Turing machine ``M`` the paper defines an LCL problem ``L_M`` on
two-dimensional toroidal grids such that ``L_M`` has complexity
``Θ(log* n)`` exactly when ``M`` halts on the empty tape, and ``Θ(n)``
otherwise; since the halting problem is undecidable, so is distinguishing
``Θ(log* n)`` from ``Θ(n)`` on grids (Theorem 3).

This package makes the construction executable:

* :mod:`repro.undecidability.turing` — a deterministic Turing-machine
  simulator plus the small halting / non-halting example machines used in
  the experiments;
* :mod:`repro.undecidability.lm_problem` — the labels and local rules of
  ``L_M`` (quadrant/border/anchor types, diagonal 2-colouring, the encoding
  of the execution table) and a local-checkability verifier;
* :mod:`repro.undecidability.lm_solver` — the ``O(log* n)`` solver used when
  ``M`` halts (anchors, Voronoi quadrants, execution tables) and the global
  3-colouring fallback that keeps ``L_M`` solvable when it does not.
"""

from repro.undecidability.turing import (
    TuringMachine,
    busy_machine,
    halting_machine,
    non_halting_machine,
)
from repro.undecidability.lm_problem import (
    LMLabel,
    check_lm_labelling,
    lm_problem_description,
)
from repro.undecidability.lm_solver import solve_lm_globally, solve_lm_locally

__all__ = [
    "LMLabel",
    "TuringMachine",
    "busy_machine",
    "check_lm_labelling",
    "halting_machine",
    "lm_problem_description",
    "non_halting_machine",
    "solve_lm_globally",
    "solve_lm_locally",
]
