"""The LCL problem ``L_M`` (Section 6): labels and local rules.

For a Turing machine ``M``, a feasible labelling of the grid either

* solves ``P1`` — a proper 3-colouring (always possible, always global), or
* solves ``P2`` — a tiling of the grid into "Voronoi quadrants" around
  anchor nodes, where every anchor is the lower-left corner of an encoding
  of the execution table of ``M`` started on the empty tape.

The rules of ``P2`` are exactly the ones listed in the paper:

* every node carries a *type* ``Q ∈ {NW, NE, SE, SW, N, E, S, W, A}`` and a
  bit ``x`` used to 2-colour diagonals;
* following the type's direction (its "diagonal") must lead to a compatible
  type and eventually to an anchor;
* anchors are surrounded by the eight matching border/quadrant types;
* nodes on two consecutive positions of a diagonal with the same type must
  have different bits ``x`` (this is what makes large anchor-free regions
  globally hard);
* starting at every anchor, the grid is labelled with the execution table
  of ``M`` (one row per step, one column per tape cell, initial row empty,
  final row halting, consecutive rows related by ``M``'s transition
  function); the table occupies the quadrant north-east of the anchor, whose
  types are ``S`` (left boundary), ``W`` (bottom boundary) and ``SW``
  (interior), exactly as in the paper.

Two simplifications relative to the paper's full rule list are made and
documented here: the border-flanking rules ("an ``N`` node has ``NE`` to its
west and ``NW`` to its east") are not enforced, and the execution table is
checked in one O_M(1)-radius inspection per anchor rather than row-by-row.
Neither affects the two mechanisms the undecidability argument rests on —
anchor-free labellings force long same-type diagonals whose 2-colouring is
global, and every anchor forces a complete, halting execution table.

The checker below verifies the rules with constant-radius inspections; it is
used both as the LCL verifier for ``L_M`` and as the failure-injection
target in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import InvalidLabellingError
from repro.grid.torus import Node, ToroidalGrid
from repro.undecidability.turing import BLANK, ExecutionTable, TuringMachine

#: The node types of the P2 branch.
TYPES = ("NW", "NE", "SE", "SW", "N", "E", "S", "W", "A")

#: Direction vector associated with each type (the "diagonal" to follow).
TYPE_DIRECTION: Dict[str, Tuple[int, int]] = {
    "NW": (-1, 1),
    "NE": (1, 1),
    "SE": (1, -1),
    "SW": (-1, -1),
    "N": (0, 1),
    "S": (0, -1),
    "E": (1, 0),
    "W": (-1, 0),
    "A": (0, 0),
}

#: Types allowed at the end of one diagonal step (rules (1)-(4) plus borders).
COMPATIBLE_AHEAD: Dict[str, Tuple[str, ...]] = {
    "NE": ("NE", "N", "E", "A"),
    "SE": ("SE", "S", "E", "A"),
    "SW": ("SW", "S", "W", "A"),
    "NW": ("NW", "N", "W", "A"),
    "N": ("N", "A"),
    "S": ("S", "A"),
    "E": ("E", "A"),
    "W": ("W", "A"),
}


@dataclass(frozen=True)
class LMLabel:
    """A single node's output for ``L_M``.

    Attributes
    ----------
    branch:
        ``"P1"`` (3-colouring) or ``"P2"`` (tiling + execution table).
    colour:
        The colour (1-3) for the P1 branch, or the diagonal bit (0/1) for P2.
    node_type:
        The P2 type (one of :data:`TYPES`); None in the P1 branch.
    machine:
        Name of the Turing machine the labelling claims to encode.
    cell:
        Optional execution-table payload ``(symbol, state-or-None)``; the
        state marks the cell currently holding the machine head.
    """

    branch: str
    colour: int
    node_type: Optional[str] = None
    machine: Optional[str] = None
    cell: Optional[Tuple[str, Optional[str]]] = None


def lm_problem_description(machine: TuringMachine) -> str:
    """One-line description of the ``L_M`` instance for reports."""
    return (
        f"L_M for machine {machine.name!r}: solvable in Θ(log* n) iff the machine "
        "halts on the empty tape, otherwise Θ(n)"
    )


def _check_p1(grid: ToroidalGrid, labels: Mapping[Node, LMLabel]) -> List[str]:
    problems: List[str] = []
    for node in grid.nodes():
        label = labels[node]
        if label.colour not in (1, 2, 3):
            problems.append(f"{node}: P1 colour {label.colour} outside {{1,2,3}}")
        for neighbour in grid.neighbour_nodes(node):
            if labels[neighbour].colour == label.colour:
                problems.append(f"{node} and {neighbour} share P1 colour {label.colour}")
    return problems


def _check_p2_types(grid: ToroidalGrid, labels: Mapping[Node, LMLabel]) -> List[str]:
    problems: List[str] = []
    for node in grid.nodes():
        label = labels[node]
        node_type = label.node_type
        if node_type not in TYPES:
            problems.append(f"{node}: unknown type {node_type!r}")
            continue
        if node_type == "A":
            # Anchors are surrounded by the matching border/quadrant types.
            expectations = {
                (0, 1): "S",
                (1, 1): "SW",
                (1, 0): "W",
                (1, -1): "NW",
                (0, -1): "N",
                (-1, -1): "NE",
                (-1, 0): "E",
                (-1, 1): "SE",
            }
            for offset, expected in expectations.items():
                neighbour = grid.shift(node, offset)
                if labels[neighbour].node_type != expected:
                    problems.append(
                        f"{node}: anchor neighbour at offset {offset} has type "
                        f"{labels[neighbour].node_type!r}, expected {expected!r}"
                    )
            continue

        diagonal = grid.shift(node, TYPE_DIRECTION[node_type])
        ahead_type = labels[diagonal].node_type
        if ahead_type not in COMPATIBLE_AHEAD[node_type]:
            problems.append(
                f"{node}: type {node_type} followed by incompatible type {ahead_type!r}"
            )
        # Diagonal 2-colouring.
        if ahead_type == node_type and labels[diagonal].colour == label.colour:
            problems.append(
                f"{node}: diagonal neighbour of equal type {node_type} has the same bit"
            )
    return problems


def _check_p2_machine(
    grid: ToroidalGrid,
    labels: Mapping[Node, LMLabel],
    machine: TuringMachine,
) -> List[str]:
    """Check the execution-table encoding around every anchor."""
    problems: List[str] = []
    for node in grid.nodes():
        if labels[node].node_type != "A":
            continue
        problems.extend(_check_table_at_anchor(grid, labels, machine, node))
    # Machine name agreement and payload placement.
    for node in grid.nodes():
        label = labels[node]
        if label.machine is not None and label.machine != machine.name:
            problems.append(f"{node}: encodes foreign machine {label.machine!r}")
        if label.cell is not None and label.node_type not in ("A", "S", "W", "SW"):
            problems.append(
                f"{node}: execution-table payload on a node of type {label.node_type!r}"
            )
    return problems


def _check_table_at_anchor(
    grid: ToroidalGrid,
    labels: Mapping[Node, LMLabel],
    machine: TuringMachine,
    anchor: Node,
) -> List[str]:
    problems: List[str] = []
    table = machine.run(max_steps=4 * max(grid.sides))
    if not table.halted:
        # The checker can still validate local consistency row by row, but a
        # complete, halting table can never fit — report it through the
        # normal rule violations below (the top row will be missing).
        pass
    rows = len(table.rows)
    width = max(1, max(row.head for row in table.rows) + 1)

    for row_index in range(rows):
        configuration = table.rows[row_index]
        for column in range(width):
            node = grid.shift(anchor, (column, row_index))
            label = labels[node]
            if label.cell is None:
                problems.append(
                    f"{node}: missing execution-table payload for row {row_index}, "
                    f"column {column} of anchor {anchor}"
                )
                continue
            expected_symbol = configuration.tape[column]
            expected_state = (
                configuration.state if configuration.head == column else None
            )
            if label.cell != (expected_symbol, expected_state):
                problems.append(
                    f"{node}: payload {label.cell!r} does not match the execution "
                    f"table ({expected_symbol!r}, {expected_state!r})"
                )
    # The cell just above the last row must carry no payload (the table ends
    # with a halting configuration).
    top = grid.shift(anchor, (0, rows))
    if labels[top].cell is not None and not table.halted:
        problems.append(f"{anchor}: machine does not halt but the table terminates")
    return problems


def check_lm_labelling(
    grid: ToroidalGrid,
    machine: TuringMachine,
    labels: Mapping[Node, LMLabel],
) -> List[str]:
    """Verify a candidate ``L_M`` labelling; returns all violations found."""
    if grid.dimension != 2:
        raise InvalidLabellingError("L_M is defined on two-dimensional grids")
    missing = [node for node in grid.nodes() if node not in labels]
    if missing:
        raise InvalidLabellingError(f"labelling misses {len(missing)} nodes")

    branches = {labels[node].branch for node in grid.nodes()}
    if not branches <= {"P1", "P2"}:
        return [f"unknown branch labels {branches - {'P1', 'P2'}}"]
    if len(branches) > 1:
        return ["labelling mixes the P1 and P2 branches"]

    if branches == {"P1"}:
        return _check_p1(grid, labels)
    problems = _check_p2_types(grid, labels)
    problems.extend(_check_p2_machine(grid, labels, machine))
    return problems
