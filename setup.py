"""Setuptools entry point.

The project metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` works in fully offline environments where the ``wheel``
package (needed by the PEP 660 editable-install path) is unavailable.
"""

from setuptools import setup

setup()
